package control

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestDefaultLoopSettles(t *testing.T) {
	r, err := Simulate(DefaultPlant(), DefaultController(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Settled {
		t.Fatalf("default loop did not settle: %+v", r)
	}
	if r.SettlingTime > 0.5 {
		t.Errorf("settling time = %v, want < 0.5 s", r.SettlingTime)
	}
	// The 1 mm perturbation must not grow much before being caught.
	if r.MaxDeviation > 3e-3 {
		t.Errorf("max deviation = %v m, want < 3 mm", r.MaxDeviation)
	}
	if r.PeakForce > DefaultController().MaxForce {
		t.Errorf("peak force %v exceeds actuator limit", r.PeakForce)
	}
}

func TestStabilisationPowerNegligible(t *testing.T) {
	// §IV-A.2: "the only power concern is from active stabilisation, which
	// it is known to be conducted with minimal power usage". Check it is
	// orders of magnitude below the 75 kW launch peak.
	p, err := StabilisationPowerPerCart()
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatal("stabilisation power must be positive (the loop does work)")
	}
	if p > 5*units.Watt {
		t.Errorf("stabilisation power = %v, want < 5 W (vs 75 kW launch peak)", p)
	}
}

func TestUncontrolledCartDiverges(t *testing.T) {
	// With negligible gains the destabilising stiffness wins: the cart
	// drifts to the wall and the run reports not settled.
	weak := DefaultController()
	weak.KP = 1e-6
	weak.KD = 0
	o := DefaultOptions()
	o.Duration = 5
	r, err := Simulate(DefaultPlant(), weak, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Settled {
		t.Fatal("uncontrolled cart must not settle")
	}
	if r.MaxDeviation < 0.1 {
		t.Errorf("max deviation = %v, expected divergence", r.MaxDeviation)
	}
}

func TestGainBelowStiffnessDiverges(t *testing.T) {
	// k_p must exceed k_u for the closed loop to be stable at all.
	c := DefaultController()
	c.KP = DefaultPlant().UnstableStiffness * 0.5
	r, err := Simulate(DefaultPlant(), c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Settled {
		t.Error("proportional gain below magnetic stiffness cannot stabilise")
	}
}

func TestSlowSamplingDestabilises(t *testing.T) {
	// Sampling far below the loop bandwidth loses the cart.
	c := DefaultController()
	c.SampleRate = 5
	o := DefaultOptions()
	o.Duration = 5
	r, err := Simulate(DefaultPlant(), c, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Settled && r.MaxDeviation < 2e-3 {
		t.Errorf("5 Hz sampling should not hold a 1 kHz-tuned loop: %+v", r)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Plant{}, DefaultController(), DefaultOptions()); !errors.Is(err, ErrBadPlant) {
		t.Errorf("err = %v", err)
	}
	bad := DefaultController()
	bad.SampleRate = 0
	if _, err := Simulate(DefaultPlant(), bad, DefaultOptions()); !errors.Is(err, ErrBadController) {
		t.Errorf("err = %v", err)
	}
	o := DefaultOptions()
	o.Duration = 0
	if _, err := Simulate(DefaultPlant(), DefaultController(), o); err == nil {
		t.Error("zero duration must error")
	}
	o = DefaultOptions()
	o.SettleBand = 0
	if _, err := Simulate(DefaultPlant(), DefaultController(), o); err == nil {
		t.Error("zero settle band must error")
	}
}

func TestLargerPerturbationsStillSettleProperty(t *testing.T) {
	f := func(raw float64) bool {
		off := math.Abs(math.Mod(raw, 3e-3)) + 1e-4 // 0.1–3.1 mm
		o := DefaultOptions()
		o.InitialOffset = off
		o.Duration = 2
		r, err := Simulate(DefaultPlant(), DefaultController(), o)
		if err != nil {
			return false
		}
		return r.Settled && r.MaxDeviation < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerScalesWithPerturbation(t *testing.T) {
	small := DefaultOptions()
	small.InitialOffset = 1e-4
	big := DefaultOptions()
	big.InitialOffset = 2e-3
	rs, err := Simulate(DefaultPlant(), DefaultController(), small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(DefaultPlant(), DefaultController(), big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.AveragePower <= rs.AveragePower {
		t.Errorf("bigger perturbations must cost more power: %v vs %v",
			rb.AveragePower, rs.AveragePower)
	}
}
