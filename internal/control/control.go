// Package control simulates the DHL's active lateral stabilisation
// (§III-B.2, §IV-A.2): Earnshaw's theorem makes a passively levitated cart
// laterally unstable, so each rail segment carries a sensor array and
// correcting electromagnets. The paper notes that "it is only necessary to
// actively control the cart when it deviates from the equilibrium point"
// and that properly tuned arrays need "negligible force", so stabilisation
// power is minimal — this package makes that claim checkable.
//
// The model is a sampled PD controller on the lateral displacement of a
// point-mass cart with destabilising magnetic stiffness:
//
//	m·ẍ = k_u·x − F_act,   F_act = clamp(k_p·x̂ + k_d·v̂, ±F_max)
//
// where x̂, v̂ are zero-order-held sensor samples. Electrical actuator power
// is modelled as F²/κ (coil resistive loss, κ the actuator constant).
package control

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// Plant is the lateral cart dynamics.
type Plant struct {
	// Mass of the cart.
	Mass units.Grams
	// UnstableStiffness k_u in N/m: the destabilising magnetic gradient.
	UnstableStiffness float64
}

// Controller is a sampled PD regulator with actuator saturation.
type Controller struct {
	// KP and KD are the proportional (N/m) and derivative (N·s/m) gains.
	KP, KD float64
	// SampleRate of the rail's sensor array, Hz.
	SampleRate float64
	// MaxForce of the correcting electromagnets, N.
	MaxForce float64
	// ActuatorConstant κ in N²/W: electrical power = F²/κ.
	ActuatorConstant float64
}

// DefaultPlant is the 282 g default cart over a rail with a mild
// destabilising gradient.
func DefaultPlant() Plant {
	return Plant{Mass: 282, UnstableStiffness: 50}
}

// DefaultController is tuned for the default plant: critically-damped-ish
// gains sampled at 1 kHz, 20 N actuators.
func DefaultController() Controller {
	return Controller{KP: 400, KD: 6, SampleRate: 1000, MaxForce: 20, ActuatorConstant: 50}
}

// Result summarises a stabilisation run.
type Result struct {
	// Settled reports whether |x| stayed below the settle band for the
	// final 10 % of the run.
	Settled bool
	// SettlingTime is when |x| last exceeded the settle band (0 if never).
	SettlingTime units.Seconds
	// MaxDeviation is the peak |x| over the run, metres.
	MaxDeviation float64
	// AveragePower is the mean electrical actuator power, watts.
	AveragePower units.Watts
	// PeakForce is the largest actuator force commanded, newtons.
	PeakForce float64
}

// Options configures a run.
type Options struct {
	// InitialOffset x(0), metres (e.g. a 1 mm rail joint bump).
	InitialOffset float64
	// InitialVelocity ẋ(0), m/s.
	InitialVelocity float64
	// Duration of the simulation.
	Duration units.Seconds
	// SettleBand: |x| below this counts as settled, metres.
	SettleBand float64
	// Step is the integrator time step; 0 picks 1/10 of the sample period.
	Step units.Seconds
}

// DefaultOptions is a 1 mm perturbation watched for one second with a
// 0.1 mm settle band.
func DefaultOptions() Options {
	return Options{InitialOffset: 1e-3, Duration: 1, SettleBand: 1e-4}
}

// Errors returned by Simulate.
var (
	ErrBadPlant      = errors.New("control: plant mass and stiffness must be positive")
	ErrBadController = errors.New("control: controller gains, rate and limits must be positive")
)

// Simulate runs the sampled control loop (semi-implicit Euler integration)
// and reports the outcome.
func Simulate(p Plant, c Controller, o Options) (Result, error) {
	if p.Mass <= 0 || p.UnstableStiffness <= 0 {
		return Result{}, ErrBadPlant
	}
	if c.KP <= 0 || c.KD < 0 || c.SampleRate <= 0 || c.MaxForce <= 0 || c.ActuatorConstant <= 0 {
		return Result{}, ErrBadController
	}
	if o.Duration <= 0 {
		return Result{}, fmt.Errorf("control: duration must be positive, got %v", o.Duration)
	}
	if o.SettleBand <= 0 {
		return Result{}, errors.New("control: settle band must be positive")
	}
	dt := float64(o.Step)
	if dt <= 0 {
		dt = 1 / (10 * c.SampleRate)
	}
	m := p.Mass.Kg()
	x, v := o.InitialOffset, o.InitialVelocity
	samplePeriod := 1 / c.SampleRate
	nextSample := 0.0
	var heldX, heldV float64
	var res Result
	var energy float64
	steps := int(math.Ceil(float64(o.Duration) / dt))
	for i := 0; i < steps; i++ {
		t := float64(i) * dt
		if t >= nextSample {
			heldX, heldV = x, v
			nextSample += samplePeriod
		}
		f := c.KP*heldX + c.KD*heldV
		if f > c.MaxForce {
			f = c.MaxForce
		} else if f < -c.MaxForce {
			f = -c.MaxForce
		}
		a := (p.UnstableStiffness*x - f) / m
		v += a * dt
		x += v * dt
		if math.Abs(x) > res.MaxDeviation {
			res.MaxDeviation = math.Abs(x)
		}
		if math.Abs(x) > o.SettleBand {
			res.SettlingTime = units.Seconds(t)
		}
		if math.Abs(f) > res.PeakForce {
			res.PeakForce = math.Abs(f)
		}
		energy += f * f / c.ActuatorConstant * dt
		if math.IsNaN(x) || math.Abs(x) > 1 {
			// Diverged (hit the tube wall).
			res.Settled = false
			res.AveragePower = units.Watts(energy / (t + dt))
			return res, nil
		}
	}
	res.AveragePower = units.Watts(energy / float64(o.Duration))
	res.Settled = float64(res.SettlingTime) <= 0.9*float64(o.Duration)
	return res, nil
}

// StabilisationPowerPerCart runs the default scenario and returns the
// average power — the quantity the paper argues is negligible next to the
// tens-of-kW launch power.
func StabilisationPowerPerCart() (units.Watts, error) {
	r, err := Simulate(DefaultPlant(), DefaultController(), DefaultOptions())
	if err != nil {
		return 0, err
	}
	if !r.Settled {
		return 0, errors.New("control: default configuration failed to settle")
	}
	return r.AveragePower, nil
}
