package physics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func mustProfile(t *testing.T, L, v, a float64) Profile {
	t.Helper()
	p, err := NewProfile(units.Metres(L), units.MetresPerSecond(v), units.MetresPerSecond2(a))
	if err != nil {
		t.Fatalf("NewProfile(%v,%v,%v): %v", L, v, a, err)
	}
	return p
}

func TestProfileValidation(t *testing.T) {
	cases := []struct {
		L, v, a float64
		wantErr error
	}{
		{500, 0, 1000, ErrNonPositiveSpeed},
		{500, -10, 1000, ErrNonPositiveSpeed},
		{500, 200, 0, ErrNonPositiveAcceleration},
		{0, 200, 1000, ErrNonPositiveLength},
		{-5, 200, 1000, ErrNonPositiveLength},
		// 300 m/s needs 2×45 m of ramp; an 80 m track is too short.
		{80, 300, 1000, ErrTrackTooShort},
		{500, 200, 1000, nil},
		// Exactly ramp-limited track is allowed (pure triangle profile).
		{40, 200, 1000, nil},
	}
	for _, c := range cases {
		_, err := NewProfile(units.Metres(c.L), units.MetresPerSecond(c.v), units.MetresPerSecond2(c.a))
		if !errors.Is(err, c.wantErr) {
			t.Errorf("NewProfile(%v,%v,%v) err = %v, want %v", c.L, c.v, c.a, err, c.wantErr)
		}
	}
}

func TestRampDistancesMatchPaperLIMLengths(t *testing.T) {
	// Table V: LIM lengths 5, 20, 45 m for max speeds 100, 200, 300 m/s.
	for _, c := range []struct{ v, want float64 }{{100, 5}, {200, 20}, {300, 45}} {
		p := mustProfile(t, 500, c.v, 1000)
		approx(t, "ramp", float64(p.RampDistance()), c.want, 1e-12)
	}
}

func TestTransitTimePaperVsExact(t *testing.T) {
	p := mustProfile(t, 500, 200, 1000)
	// Paper model: 500/200 + 200/2000 = 2.6 s.
	approx(t, "paper transit", float64(p.TransitTime(TimeModelPaper)), 2.6, 1e-12)
	// Exact model: 500/200 + 200/1000 = 2.7 s.
	approx(t, "exact transit", float64(p.TransitTime(TimeModelExact)), 2.7, 1e-12)
	if p.TransitTime(TimeModelExact) <= p.TransitTime(TimeModelPaper) {
		t.Error("exact model must be slower than the paper model")
	}
}

func TestProfilePhaseDecomposition(t *testing.T) {
	p := mustProfile(t, 500, 200, 1000)
	approx(t, "ramp time", float64(p.RampTime()), 0.2, 1e-12)
	approx(t, "cruise dist", float64(p.CruiseDistance()), 460, 1e-12)
	approx(t, "cruise time", float64(p.CruiseTime()), 2.3, 1e-12)
	// Exact transit equals 2 ramps + cruise.
	total := 2*float64(p.RampTime()) + float64(p.CruiseTime())
	approx(t, "sum of phases", total, float64(p.TransitTime(TimeModelExact)), 1e-12)
}

func TestSpeedAt(t *testing.T) {
	p := mustProfile(t, 500, 200, 1000)
	if p.SpeedAt(0) != 0 || p.SpeedAt(500) != 0 {
		t.Error("speed at endpoints must be 0")
	}
	if got := p.SpeedAt(250); got != 200 {
		t.Errorf("cruise speed = %v, want 200", got)
	}
	// Mid-ramp: after 10 m at 1000 m/s², v = sqrt(2·1000·10) ≈ 141.4.
	approx(t, "mid-ramp speed", float64(p.SpeedAt(10)), math.Sqrt(20000), 1e-12)
	// Symmetric braking ramp.
	approx(t, "brake symmetric", float64(p.SpeedAt(490)), float64(p.SpeedAt(10)), 1e-12)
	if p.SpeedAt(-1) != 0 || p.SpeedAt(501) != 0 {
		t.Error("speed outside track must be 0")
	}
}

func TestPositionAt(t *testing.T) {
	p := mustProfile(t, 500, 200, 1000)
	if p.PositionAt(-1) != 0 || p.PositionAt(0) != 0 {
		t.Error("position at t<=0 must be 0")
	}
	// End of accel ramp: 20 m at t = 0.2 s.
	approx(t, "end of ramp", float64(p.PositionAt(0.2)), 20, 1e-12)
	// Mid cruise: 20 + 200·1.0.
	approx(t, "mid cruise", float64(p.PositionAt(1.2)), 220, 1e-12)
	// Completed.
	if got := p.PositionAt(10); got != 500 {
		t.Errorf("final position = %v, want 500", got)
	}
	// Position exactly at total exact transit time is L.
	approx(t, "at arrival", float64(p.PositionAt(p.TransitTime(TimeModelExact))), 500, 1e-9)
}

func TestPositionMonotonicProperty(t *testing.T) {
	p := mustProfile(t, 500, 200, 1000)
	f := func(a, b float64) bool {
		t1 := math.Abs(math.Mod(a, 3.0))
		t2 := math.Abs(math.Mod(b, 3.0))
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return p.PositionAt(units.Seconds(t1)) <= p.PositionAt(units.Seconds(t2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransitTimeMonotonicInLengthProperty(t *testing.T) {
	f := func(raw float64) bool {
		l1 := 100 + math.Abs(math.Mod(raw, 900))
		l2 := l1 + 50
		p1 := Profile{Length: units.Metres(l1), MaxSpeed: 200, Acceleration: 1000}
		p2 := Profile{Length: units.Metres(l2), MaxSpeed: 200, Acceleration: 1000}
		return p1.TransitTime(TimeModelPaper) < p2.TransitTime(TimeModelPaper) &&
			p1.TransitTime(TimeModelExact) < p2.TransitTime(TimeModelExact)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKineticEnergy(t *testing.T) {
	// ½ × 0.282 kg × (200 m/s)² = 5640 J.
	approx(t, "KE", float64(KineticEnergy(282*units.Gram, 200)), 5640, 1e-12)
	if KineticEnergy(282*units.Gram, 0) != 0 {
		t.Error("KE at rest must be 0")
	}
}

func TestLIMValidation(t *testing.T) {
	if _, err := NewLIM(0, 0); err == nil {
		t.Error("efficiency 0 must be rejected")
	}
	if _, err := NewLIM(1.5, 0); err == nil {
		t.Error("efficiency >1 must be rejected")
	}
	if _, err := NewLIM(0.75, -0.1); err == nil {
		t.Error("negative regen must be rejected")
	}
	if _, err := NewLIM(0.75, 1.1); err == nil {
		t.Error("regen >1 must be rejected")
	}
	l, err := NewLIM(0.75, 0.7)
	if err != nil {
		t.Fatalf("valid LIM rejected: %v", err)
	}
	if l.Efficiency != 0.75 || l.RegenEfficiency != 0.7 {
		t.Errorf("LIM fields = %+v", l)
	}
}

func TestLaunchEnergyMatchesTableVI(t *testing.T) {
	lim := DefaultLIM()
	// Table VI energy column: (mass g, speed, want kJ within rounding).
	cases := []struct {
		mass, v, wantKJ float64
	}{
		{282, 100, 3.7},
		{282, 200, 15},
		{282, 300, 34},
		{161, 200, 8.6},
		{524, 200, 28},
		{161, 100, 2.1},
		{524, 100, 7.0},
		{161, 300, 19},
		{524, 300, 63},
	}
	for _, c := range cases {
		got := lim.LaunchEnergy(units.Grams(c.mass), units.MetresPerSecond(c.v)).KJ()
		approx(t, "launch energy", got, c.wantKJ, 0.03)
	}
}

func TestLIMRegenReducesBrakingEnergy(t *testing.T) {
	base := DefaultLIM()
	regen, _ := NewLIM(0.75, 0.7)
	m, v := 282*units.Gram, units.MetresPerSecond(200)
	if regen.BrakingEnergy(m, v) >= base.BrakingEnergy(m, v) {
		t.Error("regeneration must reduce net braking energy")
	}
	if regen.AccelerationEnergy(m, v) != base.AccelerationEnergy(m, v) {
		t.Error("regeneration must not change acceleration energy")
	}
	// Net braking with full regen at η=1 would be 0.
	perfect, _ := NewLIM(1, 1)
	if perfect.BrakingEnergy(m, v) != 0 {
		t.Errorf("perfect regen braking = %v, want 0", perfect.BrakingEnergy(m, v))
	}
}

func TestPeakPowerMatchesTableVI(t *testing.T) {
	lim := DefaultLIM()
	cases := []struct {
		mass, v, wantKW float64
	}{
		{282, 100, 38},
		{282, 200, 75},
		{282, 300, 113},
		{161, 200, 43},
		{524, 200, 140},
		{161, 100, 22},
		{524, 100, 70},
		{161, 300, 64},
		{524, 300, 210},
	}
	for _, c := range cases {
		got := lim.PeakPower(units.Grams(c.mass), 1000, units.MetresPerSecond(c.v)).KW()
		approx(t, "peak power", got, c.wantKW, 0.03)
	}
}

func TestLIMRequiredLength(t *testing.T) {
	lim := DefaultLIM()
	for _, c := range []struct{ v, want float64 }{{100, 5}, {200, 20}, {300, 45}} {
		got := float64(lim.RequiredLength(units.MetresPerSecond(c.v), 1000))
		approx(t, "LIM length", got, c.want, 1e-12)
	}
}

func TestLaunchEnergyScalesQuadraticallyProperty(t *testing.T) {
	lim := DefaultLIM()
	f := func(raw float64) bool {
		v := 10 + math.Abs(math.Mod(raw, 290))
		e1 := float64(lim.LaunchEnergy(282*units.Gram, units.MetresPerSecond(v)))
		e2 := float64(lim.LaunchEnergy(282*units.Gram, units.MetresPerSecond(2*v)))
		return math.Abs(e2-4*e1) < 1e-6*e2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDragModel(t *testing.T) {
	d := DefaultDrag()
	// L_d = g·M·x/c1 = 9.80665 × 0.282 × 500 / 10 ≈ 138.3 J.
	got := float64(d.EnergyLoss(282*units.Gram, 500))
	approx(t, "drag loss", got, 138.27, 0.001)
	// With downforce c2 = 2 m/s²: (9.80665+4)·0.282·500/10.
	d2 := DragModel{LiftToDrag: 10, DownforceAccel: 2}
	approx(t, "drag with downforce", float64(d2.EnergyLoss(282*units.Gram, 500)), 194.67, 0.001)
}

func TestDragNegligibleAtPaperOperatingPoints(t *testing.T) {
	// §IV-A.2: at 200 m/s over 500 or 1000 m the drag loss is negligible
	// versus the 15 kJ launch energy.
	d := DefaultDrag()
	lim := DefaultLIM()
	if !d.NegligibleVersusLaunch(lim, 282*units.Gram, 200, 500, 0.05) {
		t.Error("drag should be negligible at 200 m/s / 500 m")
	}
	if !d.NegligibleVersusLaunch(lim, 282*units.Gram, 200, 1000, 0.05) {
		t.Error("drag should be negligible at 200 m/s / 1000 m")
	}
	// But it is NOT negligible for a slow cart on a long track.
	if d.NegligibleVersusLaunch(lim, 282*units.Gram, 10, 1000, 0.05) {
		t.Error("drag must dominate at 10 m/s over 1 km")
	}
}

func TestDragDegenerate(t *testing.T) {
	d := DragModel{}
	if !math.IsInf(float64(d.EnergyLoss(282*units.Gram, 500)), 1) {
		t.Error("zero lift-to-drag must give infinite loss")
	}
	if !math.IsInf(d.DragForce(282*units.Gram), 1) {
		t.Error("zero lift-to-drag must give infinite force")
	}
}

func TestSpeedDecayOverCruise(t *testing.T) {
	d := DefaultDrag()
	// Coasting 500 m at 200 m/s: loss 138 J vs KE 5640 J → ~1.2 % speed loss.
	decay := d.SpeedDecayOverCruise(282*units.Gram, 200, 500)
	if decay <= 0 || decay >= 0.05 {
		t.Errorf("decay = %v, want small positive", decay)
	}
	// A crawl must stop: KE at 1 m/s is 0.141 J, drag over 1 km is 277 J.
	if got := d.SpeedDecayOverCruise(282*units.Gram, 1, 1000); got != 1 {
		t.Errorf("stopped cart decay = %v, want 1", got)
	}
}

func TestVacuumTube(t *testing.T) {
	tube := DefaultTube()
	if r := tube.PressureRatio(); math.Abs(r-100.0/101325) > 1e-12 {
		t.Errorf("pressure ratio = %v", r)
	}
	// Density at 1 mbar, 20 °C ≈ 0.00119 kg/m³.
	approx(t, "air density", tube.AirDensity(), 0.001188, 0.01)
	// Aero drag at 200 m/s must be tiny (< 2 N) and the loss negligible.
	if f := tube.AeroDragForce(200); f > 2 {
		t.Errorf("aero drag force = %v N, want < 2", f)
	}
	if !tube.NegligibleAero(DefaultLIM(), 282*units.Gram, 200, 1000, 0.2) {
		t.Error("aero loss should be negligible at rough vacuum")
	}
	// At atmospheric pressure the same cruise is NOT negligible.
	atmo := tube
	atmo.Pressure = AtmospherePascal
	if atmo.NegligibleAero(DefaultLIM(), 282*units.Gram, 200, 1000, 0.2) {
		t.Error("aero loss must matter at 1 atm")
	}
}

func TestPumpDownEnergy(t *testing.T) {
	tube := DefaultTube()
	e := float64(tube.PumpDownEnergy(500))
	// W = P0·V·ln(P0/P): V = π·0.15²·500 ≈ 35.34 m³ → ≈ 24.8 MJ.
	approx(t, "pump-down", e, 101325*35.3429*math.Log(1013.25), 0.001)
	bad := tube
	bad.Pressure = 0
	if !math.IsInf(float64(bad.PumpDownEnergy(500)), 1) {
		t.Error("perfect vacuum needs infinite isothermal work")
	}
}

func TestTimeModelString(t *testing.T) {
	if TimeModelPaper.String() != "paper" || TimeModelExact.String() != "exact" {
		t.Error("TimeModel strings wrong")
	}
	if TimeModel(9).String() != "TimeModel(9)" {
		t.Errorf("unknown TimeModel string = %q", TimeModel(9).String())
	}
}

func TestVacuumSustainingPower(t *testing.T) {
	tube := DefaultTube()
	// §IV-B: holding a rough vacuum takes minimal power. A 500 m tube's
	// typical leak rate sustains on a few watts.
	leak := tube.TypicalLeakRate(500)
	if leak <= 0 {
		t.Fatal("leak rate must be positive")
	}
	p := tube.SustainingPower(leak)
	if p <= 0 || p > 10 {
		t.Errorf("sustaining power = %v, want a few watts", p)
	}
	if tube.SustainingPower(0) != 0 {
		t.Error("no leak, no power")
	}
	perfect := tube
	perfect.Pressure = 0
	if !math.IsInf(float64(perfect.SustainingPower(leak)), 1) {
		t.Error("perfect vacuum needs infinite power")
	}
	// Sustaining power is far below a single launch's average power.
	if float64(p) > 0.01*15040/8.6 {
		t.Errorf("vacuum power %v should be ≪ launch average", p)
	}
}
