package physics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestHalbachValidate(t *testing.T) {
	if err := DefaultHalbach().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultHalbach()
	bad.PeakField = 0
	if bad.Validate() == nil {
		t.Error("zero field must be invalid")
	}
	bad = DefaultHalbach()
	bad.CharacteristicVelocity = -1
	if bad.Validate() == nil {
		t.Error("negative v_c must be invalid")
	}
}

func TestHalbachLiftProperties(t *testing.T) {
	h := DefaultHalbach()
	gap := 0.010 // the paper's 10 mm air gap
	// Lift approaches the asymptote from below and grows with speed.
	fInf := h.AsymptoticLift(gap)
	prev := 0.0
	for _, v := range []float64{1, 5, 20, 100, 200} {
		f := h.Lift(units.MetresPerSecond(v), gap)
		if f <= prev || f >= fInf {
			t.Errorf("lift(%v) = %v not in (%v, %v)", v, f, prev, fInf)
		}
		prev = f
	}
	// At v = v_c, lift is exactly half the asymptote and L/D = 1.
	half := h.Lift(units.MetresPerSecond(h.CharacteristicVelocity), gap)
	approx(t, "lift at v_c", half, fInf/2, 1e-9)
	approx(t, "L/D at v_c", h.LiftToDrag(units.MetresPerSecond(h.CharacteristicVelocity)), 1, 1e-12)
}

func TestHalbachLiftToDragMatchesPaper(t *testing.T) {
	// §III-B.2: "a lift force to magnetic drag ratio exceeding 50 at speeds
	// of greater than a few dozen metres per second (assuming copper
	// coils)".
	h := DefaultHalbach()
	if ld := h.LiftToDrag(100); ld < 50 {
		t.Errorf("L/D at 100 m/s = %v, want ≥ 50", ld)
	}
	if ld := h.LiftToDrag(120); ld <= 50 {
		t.Errorf("L/D at 120 m/s = %v, want > 50", ld)
	}
	if ld := h.LiftToDrag(200); ld != 100 {
		t.Errorf("L/D at 200 m/s = %v, want 100", ld)
	}
	// Drag peaks at v_c and falls at cruise; lift·drag relation holds:
	// drag = lift·v_c/v.
	gap := 0.01
	v := units.MetresPerSecond(200)
	approx(t, "drag-lift relation", h.MagneticDrag(v, gap),
		h.Lift(v, gap)*h.CharacteristicVelocity/200, 1e-9)
}

func TestHalbachGapDecay(t *testing.T) {
	// Lift decays exponentially with gap: doubling the gap divides lift by
	// e^(2k·gap).
	h := DefaultHalbach()
	k := 2 * math.Pi / h.Wavelength
	ratio := h.AsymptoticLift(0.02) / h.AsymptoticLift(0.01)
	approx(t, "gap decay", ratio, math.Exp(-2*k*0.01), 1e-9)
}

func TestLiftoffSpeed(t *testing.T) {
	h := DefaultHalbach()
	// The 282 g default cart lifts off at walking pace at 10 mm.
	v := h.LiftoffSpeed(282*units.Gram, 0.010)
	if float64(v) <= 0 || float64(v) > 5 {
		t.Errorf("liftoff speed = %v m/s, want small positive", float64(v))
	}
	// A cart far too heavy for the array never lifts.
	if !math.IsInf(float64(h.LiftoffSpeed(1e9*units.Gram, 0.010)), 1) {
		t.Error("impossible lift must be +Inf")
	}
}

func TestEquilibriumGapMeetsPaperTarget(t *testing.T) {
	// §IV-A: 10 % of the cart's mass in magnets achieves levitation with a
	// 10 mm air gap. The default cart's 28.2 g of NdFeB at ~5 mm thickness:
	gap, ok, err := HalbachMassBudget(282*units.Gram, 28.2*units.Gram, 0.005, 200, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("equilibrium gap = %.1f mm, want ≥ 10 mm", gap*1000)
	}
	if gap > 0.05 {
		t.Errorf("equilibrium gap = %.1f mm implausibly large", gap*1000)
	}
}

func TestEquilibriumGapErrors(t *testing.T) {
	h := DefaultHalbach()
	h.Area = 1e-9
	if _, err := h.EquilibriumGap(282*units.Gram, 200); err == nil {
		t.Error("tiny array must fail to levitate")
	}
	bad := HalbachArray{}
	if _, err := bad.EquilibriumGap(282*units.Gram, 200); err == nil {
		t.Error("invalid array must error")
	}
	if _, _, err := HalbachMassBudget(282*units.Gram, 28.2*units.Gram, 0, 200, 0.01); err == nil {
		t.Error("zero thickness must error")
	}
}

func TestEquilibriumGapConsistency(t *testing.T) {
	// At the equilibrium gap, lift equals weight.
	h := DefaultHalbach()
	m := 282 * units.Gram
	gap, err := h.EquilibriumGap(m, 200)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "lift at equilibrium", h.Lift(200, gap), m.Kg()*StandardGravity, 1e-9)
}

func TestEddyBrakeValidation(t *testing.T) {
	if _, err := NewEddyBrake(0, 1); err == nil {
		t.Error("zero damping must be rejected")
	}
	if _, err := NewEddyBrake(1, 0); err == nil {
		t.Error("zero static force must be rejected")
	}
	if _, err := BrakeForLength(0, 200, 20); err == nil {
		t.Error("zero mass must be rejected")
	}
}

func TestEddyBrakeStopsWithinLIMLength(t *testing.T) {
	// Size a passive brake to stop the default cart from 200 m/s within the
	// 20 m the LIM would occupy.
	m := 282 * units.Gram
	b, err := BrakeForLength(m, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	d := b.StoppingDistance(m, 200)
	if d > 20.01 || d < 15 {
		t.Errorf("stopping distance = %v m, want ≈20", d)
	}
	if ts := b.StoppingTime(m, 200); ts <= 0 || ts > 2 {
		t.Errorf("stopping time = %v s", float64(ts))
	}
	// All kinetic energy is dissipated, none drawn: 5.64 kJ of heat.
	approx(t, "dissipated", float64(b.DissipatedEnergy(m, 200)), 5638.4, 0.001)
}

func TestEddyBrakeForce(t *testing.T) {
	b, err := NewEddyBrake(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Force(0) != 0 {
		t.Error("no force at rest")
	}
	approx(t, "force at 10 m/s", b.Force(10), 100.5, 1e-12)
}

func TestEddyBrakeMonotonicityProperty(t *testing.T) {
	m := 282 * units.Gram
	b, err := BrakeForLength(m, 200, 20)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		v := 10 + math.Abs(math.Mod(raw, 290))
		d1 := b.StoppingDistance(m, units.MetresPerSecond(v))
		d2 := b.StoppingDistance(m, units.MetresPerSecond(v+5))
		t1 := float64(b.StoppingTime(m, units.MetresPerSecond(v)))
		t2 := float64(b.StoppingTime(m, units.MetresPerSecond(v+5)))
		return d2 > d1 && t2 > t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
