package physics

import (
	"errors"
	"math"

	"repro/internal/units"
)

// EddyBrake models the §VI passive braking alternative: a set of permanent
// magnets at the end of the track inducing drag in the cart's fin as it
// passes. It consumes no external power (the attraction of a dual-rail DHL
// design: "this would eliminate the power cost of using an LIM for
// braking").
//
// In the linear (low slip) regime the braking force is proportional to
// speed, F = c·v, giving exponential velocity decay; a small coulomb-like
// term f₀ (magnetic hysteresis plus the arrestor latch) brings the cart to
// a complete stop.
type EddyBrake struct {
	// Damping c in N·s/m.
	Damping float64
	// StaticForce f₀ in N.
	StaticForce float64
}

// NewEddyBrake validates and builds a brake.
func NewEddyBrake(damping, static float64) (EddyBrake, error) {
	if damping <= 0 || static <= 0 {
		return EddyBrake{}, errors.New("physics: eddy brake forces must be positive")
	}
	return EddyBrake{Damping: damping, StaticForce: static}, nil
}

// BrakeForLength sizes a brake that stops the given cart from speed v
// within distance d (so the passive brake fits where the LIM would be).
// The static term is fixed at 2 % of the cart's weight.
func BrakeForLength(mass units.Grams, v units.MetresPerSecond, d units.Metres) (EddyBrake, error) {
	if mass <= 0 || v <= 0 || d <= 0 {
		return EddyBrake{}, errors.New("physics: mass, speed and distance must be positive")
	}
	f0 := 0.02 * mass.Kg() * StandardGravity
	// Solve StoppingDistance(c) = d by bisection on c.
	lo, hi := 1e-9, 1e6
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		b := EddyBrake{Damping: mid, StaticForce: f0}
		if b.StoppingDistance(mass, v) > float64(d) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return EddyBrake{Damping: hi, StaticForce: f0}, nil
}

// Force is the braking force at speed v.
func (b EddyBrake) Force(v units.MetresPerSecond) float64 {
	if v <= 0 {
		return 0
	}
	return b.Damping*float64(v) + b.StaticForce
}

// StoppingTime from initial speed v0: with m·dv/dt = −(c·v + f₀),
// t = (m/c)·ln(1 + c·v₀/f₀).
func (b EddyBrake) StoppingTime(mass units.Grams, v0 units.MetresPerSecond) units.Seconds {
	m := mass.Kg()
	return units.Seconds(m / b.Damping * math.Log(1+b.Damping*float64(v0)/b.StaticForce))
}

// StoppingDistance from initial speed v0:
// x = (m/c)·(v₀ − (f₀/c)·ln(1 + c·v₀/f₀)).
func (b EddyBrake) StoppingDistance(mass units.Grams, v0 units.MetresPerSecond) float64 {
	m := mass.Kg()
	c := b.Damping
	f0 := b.StaticForce
	v := float64(v0)
	return m / c * (v - f0/c*math.Log(1+c*v/f0))
}

// DissipatedEnergy is the cart's kinetic energy turned to heat in the brake
// (all of it — the point of the passive design is that none returns to the
// grid, but none is drawn from it either).
func (b EddyBrake) DissipatedEnergy(mass units.Grams, v0 units.MetresPerSecond) units.Joules {
	return KineticEnergy(mass, v0)
}
