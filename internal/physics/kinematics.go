// Package physics implements the maglev physics models from §III-A and §IV-A
// of the paper: trapezoidal motion profiles, linear induction motor (LIM)
// acceleration/braking energy, the Inductrack drag model, and the vacuum
// tube model.
//
// Two time models coexist:
//
//   - TimeModelExact: textbook trapezoidal kinematics. A cart accelerating at
//     a to v, cruising, and braking at a covers the track in L/v + v/a.
//   - TimeModelPaper: the accounting the paper's Table VI uses, L/v + v/(2a),
//     which credits the two ramps at half cost (equivalent to charging the
//     ramp distance at full cruise speed). The difference is ≤ 0.15 s for the
//     paper's parameter space.
//
// The reproduction benches use TimeModelPaper; the exact model is available
// for sensitivity studies.
package physics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// TimeModel selects how ramp (acceleration/braking) time is charged.
type TimeModel int

const (
	// TimeModelPaper charges t = L/v + v/(2a), matching Table VI.
	TimeModelPaper TimeModel = iota
	// TimeModelExact charges t = L/v + v/a (trapezoidal profile).
	TimeModelExact
)

// String implements fmt.Stringer.
func (m TimeModel) String() string {
	switch m {
	case TimeModelPaper:
		return "paper"
	case TimeModelExact:
		return "exact"
	default:
		return fmt.Sprintf("TimeModel(%d)", int(m))
	}
}

// Errors returned by profile construction.
var (
	ErrNonPositiveSpeed        = errors.New("physics: maximum speed must be positive")
	ErrNonPositiveAcceleration = errors.New("physics: acceleration must be positive")
	ErrNonPositiveLength       = errors.New("physics: track length must be positive")
	ErrTrackTooShort           = errors.New("physics: track shorter than acceleration + braking distance")
)

// Profile is a symmetric trapezoidal velocity profile over a track: constant
// acceleration a up to speed v, cruise, constant deceleration a to rest.
type Profile struct {
	Length       units.Metres
	MaxSpeed     units.MetresPerSecond
	Acceleration units.MetresPerSecond2
}

// NewProfile validates and builds a trapezoidal profile. The track must be at
// least as long as the acceleration plus braking distance (2 × v²/2a); the
// paper sizes its LIMs exactly to that ramp distance.
func NewProfile(length units.Metres, maxSpeed units.MetresPerSecond, accel units.MetresPerSecond2) (Profile, error) {
	p := Profile{Length: length, MaxSpeed: maxSpeed, Acceleration: accel}
	if maxSpeed <= 0 {
		return p, ErrNonPositiveSpeed
	}
	if accel <= 0 {
		return p, ErrNonPositiveAcceleration
	}
	if length <= 0 {
		return p, ErrNonPositiveLength
	}
	if float64(length) < 2*p.rampDistance() {
		//dhllint:allow allocflow -- geometry validation: degraded-physics rebuilds always pass it (the ramp only shrinks)
		return p, fmt.Errorf("%w: need ≥ %.3g m for v=%.4g m/s at a=%.4g m/s²",
			ErrTrackTooShort, 2*p.rampDistance(), float64(maxSpeed), float64(accel))
	}
	return p, nil
}

func (p Profile) rampDistance() float64 {
	v := float64(p.MaxSpeed)
	return v * v / (2 * float64(p.Acceleration))
}

// RampDistance is the distance covered while accelerating from rest to
// MaxSpeed (equal to the braking distance). The paper sizes each LIM to this
// value: 5 m, 20 m and 45 m for 100, 200 and 300 m/s at 1000 m/s².
func (p Profile) RampDistance() units.Metres { return units.Metres(p.rampDistance()) }

// RampTime is the time spent in one ramp (acceleration or braking).
func (p Profile) RampTime() units.Seconds {
	return units.Seconds(float64(p.MaxSpeed) / float64(p.Acceleration))
}

// CruiseDistance is the distance covered at constant MaxSpeed.
func (p Profile) CruiseDistance() units.Metres {
	return units.Metres(float64(p.Length) - 2*p.rampDistance())
}

// CruiseTime is the time spent at constant MaxSpeed.
func (p Profile) CruiseTime() units.Seconds {
	return units.Seconds(float64(p.CruiseDistance()) / float64(p.MaxSpeed))
}

// TransitTime is the rail time (no docking) under the chosen time model.
func (p Profile) TransitTime(m TimeModel) units.Seconds {
	lv := float64(p.Length) / float64(p.MaxSpeed)
	ramp := float64(p.MaxSpeed) / float64(p.Acceleration)
	switch m {
	case TimeModelExact:
		return units.Seconds(lv + ramp)
	default:
		return units.Seconds(lv + ramp/2)
	}
}

// SpeedAt returns the cart speed after travelling distance x from the start
// of the track under the exact trapezoidal profile. It is 0 outside [0, L].
func (p Profile) SpeedAt(x units.Metres) units.MetresPerSecond {
	d := float64(x)
	L := float64(p.Length)
	if d <= 0 || d >= L {
		return 0
	}
	a := float64(p.Acceleration)
	ramp := p.rampDistance()
	switch {
	case d < ramp:
		return units.MetresPerSecond(math.Sqrt(2 * a * d))
	case d > L-ramp:
		return units.MetresPerSecond(math.Sqrt(2 * a * (L - d)))
	default:
		return p.MaxSpeed
	}
}

// PositionAt returns the cart position after t seconds under the exact
// trapezoidal profile, clamped to [0, L].
func (p Profile) PositionAt(t units.Seconds) units.Metres {
	tt := float64(t)
	if tt <= 0 {
		return 0
	}
	a := float64(p.Acceleration)
	v := float64(p.MaxSpeed)
	L := float64(p.Length)
	tr := v / a
	tc := float64(p.CruiseTime())
	switch {
	case tt < tr: // accelerating
		return units.Metres(0.5 * a * tt * tt)
	case tt < tr+tc: // cruising
		return units.Metres(p.rampDistance() + v*(tt-tr))
	case tt < 2*tr+tc: // braking
		tb := tt - tr - tc
		return units.Metres(L - p.rampDistance() + v*tb - 0.5*a*tb*tb)
	default:
		return units.Metres(L)
	}
}

// KineticEnergy returns ½mv² for mass m at speed v.
func KineticEnergy(m units.Grams, v units.MetresPerSecond) units.Joules {
	return units.Joules(0.5 * m.Kg() * float64(v) * float64(v))
}
