package physics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// Inductrack/Halbach levitation model (§III-A, citing Post & Ryutov and
// Murai & Hasegawa). A Halbach array of permanent magnets moving over
// conductive coils induces currents that levitate the cart. The standard
// closed forms:
//
//	F_lift(v)  = F∞ · v²/(v² + v_c²)
//	F_drag(v)  = F∞ · v·v_c/(v² + v_c²)
//	L/D        = v / v_c
//	F∞         = B₀²·A/(2μ₀) · e^(−2k·gap),  k = 2π/λ
//
// where v_c is the characteristic velocity set by the track coils' R/L
// ratio. The lift-to-drag ratio grows linearly with speed, matching the
// paper's observation that the ring-coil rail exceeds L/D = 50 above a few
// dozen m/s.

// Physical constants.
const (
	// Mu0 is the vacuum permeability, H/m.
	Mu0 = 4 * math.Pi * 1e-7
	// NdFeBRemanence is the remanent field of the paper's neodymium
	// magnets, tesla.
	NdFeBRemanence = 1.4
)

// HalbachArray describes the cart's levitation magnet array.
type HalbachArray struct {
	// PeakField B₀ at the array surface, tesla. A Halbach arrangement
	// concentrates nearly the full remanence on the strong side.
	PeakField float64
	// Wavelength λ of the magnetisation pattern, metres.
	Wavelength float64
	// Area of the array facing the track, m².
	Area float64
	// CharacteristicVelocity v_c of the track coils, m/s. Copper ring coils
	// give a few m/s; L/D at cruise is v/v_c.
	CharacteristicVelocity float64
}

// DefaultHalbach is sized for the paper's default cart: a 0.02 m² array
// (roughly the cart footprint) with a 4 cm wavelength over copper coils.
func DefaultHalbach() HalbachArray {
	return HalbachArray{
		PeakField:              NdFeBRemanence,
		Wavelength:             0.04,
		Area:                   0.02,
		CharacteristicVelocity: 2,
	}
}

// Validate checks the array parameters.
func (h HalbachArray) Validate() error {
	if h.PeakField <= 0 || h.Wavelength <= 0 || h.Area <= 0 || h.CharacteristicVelocity <= 0 {
		return errors.New("physics: halbach parameters must be positive")
	}
	return nil
}

// waveNumber k = 2π/λ.
func (h HalbachArray) waveNumber() float64 { return 2 * math.Pi / h.Wavelength }

// AsymptoticLift is F∞ at the given air gap: the lift force approached at
// high speed, newtons.
func (h HalbachArray) AsymptoticLift(gapM float64) float64 {
	return h.PeakField * h.PeakField * h.Area / (2 * Mu0) * math.Exp(-2*h.waveNumber()*gapM)
}

// Lift is the levitation force at speed v and air gap, newtons.
func (h HalbachArray) Lift(v units.MetresPerSecond, gapM float64) float64 {
	vv := float64(v)
	vc := h.CharacteristicVelocity
	return h.AsymptoticLift(gapM) * vv * vv / (vv*vv + vc*vc)
}

// MagneticDrag is the induced drag force at speed v and air gap, newtons.
func (h HalbachArray) MagneticDrag(v units.MetresPerSecond, gapM float64) float64 {
	vv := float64(v)
	vc := h.CharacteristicVelocity
	return h.AsymptoticLift(gapM) * vv * vc / (vv*vv + vc*vc)
}

// LiftToDrag is v/v_c — the c₁ of the drag model in drag.go.
func (h HalbachArray) LiftToDrag(v units.MetresPerSecond) float64 {
	return float64(v) / h.CharacteristicVelocity
}

// LiftoffSpeed is the speed at which lift equals the cart's weight at the
// given gap; below it the cart rides on auxiliary wheels. Returns +Inf if
// the array can never lift the mass at that gap.
func (h HalbachArray) LiftoffSpeed(mass units.Grams, gapM float64) units.MetresPerSecond {
	w := mass.Kg() * StandardGravity
	fInf := h.AsymptoticLift(gapM)
	if fInf <= w {
		return units.MetresPerSecond(math.Inf(1))
	}
	// F∞·v²/(v²+v_c²) = w → v = v_c·sqrt(w/(F∞−w)).
	vc := h.CharacteristicVelocity
	return units.MetresPerSecond(vc * math.Sqrt(w/(fInf-w)))
}

// EquilibriumGap solves for the air gap at which lift balances the cart's
// weight at cruise speed v (the levitation height). Returns an error if the
// cart cannot levitate at all at that speed.
func (h HalbachArray) EquilibriumGap(mass units.Grams, v units.MetresPerSecond) (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	w := mass.Kg() * StandardGravity
	vv := float64(v)
	vc := h.CharacteristicVelocity
	speedFactor := vv * vv / (vv*vv + vc*vc)
	f0 := h.PeakField * h.PeakField * h.Area / (2 * Mu0) * speedFactor
	if f0 <= w {
		return 0, fmt.Errorf("physics: array lifts %.3g N at zero gap, cart weighs %.3g N", f0, w)
	}
	// w = f0·e^(−2k·g) → g = ln(f0/w)/(2k).
	return math.Log(f0/w) / (2 * h.waveNumber()), nil
}

// HalbachMassBudget checks the paper's §IV-A claim that 10 % of the cart's
// mass in magnets suffices for levitation at a 10 mm air gap: it returns
// the equilibrium gap achievable by an array whose area is derived from the
// magnet mass (volume / thickness) and reports whether it meets the target.
func HalbachMassBudget(cartMass, magnetMass units.Grams, thicknessM float64, v units.MetresPerSecond, targetGapM float64) (gap float64, ok bool, err error) {
	if thicknessM <= 0 {
		return 0, false, errors.New("physics: magnet thickness must be positive")
	}
	// NdFeB density 7.5 g/cm³ = 7500 kg/m³ (§IV-A).
	volume := magnetMass.Kg() / 7500
	h := DefaultHalbach()
	h.Area = volume / thicknessM
	gap, err = h.EquilibriumGap(cartMass, v)
	if err != nil {
		return 0, false, err
	}
	return gap, gap >= targetGapM, nil
}
