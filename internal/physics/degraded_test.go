package physics

import (
	"testing"

	"repro/internal/units"
)

func TestDegradedCruiseSpeedNominalVacuumKeepsFullSpeed(t *testing.T) {
	// At the paper's rough vacuum the drag on the default cart is well
	// inside the margin, so the cap must not bite — degraded mode only
	// exists for leaks.
	tube := DefaultTube()
	v := DegradedCruiseSpeed(tube, 282, 1000, 200, DefaultDragMargin)
	if v != 200 {
		t.Errorf("cruise speed at rough vacuum = %v, want full 200 m/s", v)
	}
}

func TestDegradedCruiseSpeedCapsDragAtMargin(t *testing.T) {
	// When the cap binds, drag at the returned speed must equal
	// margin × m·a — that is the defining equation.
	tube := DefaultTube()
	tube.Pressure = 10 * RoughVacuumPascal // 10 mbar leak
	const m, a, margin = 282.0, 1000.0, 0.02
	v := DegradedCruiseSpeed(tube, m, a, 200, margin)
	if v >= 200 {
		t.Fatalf("cap did not bind at 10 mbar: v = %v", v)
	}
	drag := tube.AeroDragForce(v)
	want := margin * units.Grams(m).Kg() * a
	approx(t, "drag at capped speed", drag, want, 1e-9)
}

func TestDegradedCruiseSpeedMonotoneInPressure(t *testing.T) {
	tube := DefaultTube()
	prev := units.MetresPerSecond(1e18)
	for _, p := range []float64{1e2, 1e3, 1e4, 1e5} {
		tube.Pressure = p
		v := DegradedCruiseSpeed(tube, 282, 1000, 200, DefaultDragMargin)
		if v <= 0 || v > 200 {
			t.Errorf("p=%v Pa: v=%v outside (0, 200]", p, v)
		}
		if v > prev {
			t.Errorf("p=%v Pa: v=%v rose above %v; speed must fall as pressure rises", p, v, prev)
		}
		prev = v
	}
}

func TestDegradedCruiseSpeedDegenerateInputs(t *testing.T) {
	// A perfect vacuum (zero density) cannot produce drag: full speed.
	v := DegradedCruiseSpeed(Tube{Pressure: 0, CrossSectionArea: 0.07, DragCoefficient: 1}, 282, 1000, 200, 0.02)
	if v != 200 {
		t.Errorf("zero-density tube: v = %v, want 200", v)
	}
	// Non-positive margin falls back to the default rather than zero.
	tube := DefaultTube()
	tube.Pressure = AtmospherePascal
	withDefault := DegradedCruiseSpeed(tube, 282, 1000, 200, DefaultDragMargin)
	if got := DegradedCruiseSpeed(tube, 282, 1000, 200, 0); got != withDefault {
		t.Errorf("zero margin: v = %v, want default-margin %v", got, withDefault)
	}
}
