package physics

import (
	"math"

	"repro/internal/units"
)

// Vacuum conditions (§IV-B): the tube is evacuated to a rough vacuum
// (~1 millibar), which makes air resistance negligible and is cheap to
// maintain because the tube cross-section is small.
const (
	// RoughVacuumPascal is the paper's example operating pressure (1 mbar).
	RoughVacuumPascal = 100.0
	// AtmospherePascal is standard sea-level pressure.
	AtmospherePascal = 101325.0
	// airGasConstant is the specific gas constant of dry air, J/(kg·K).
	airGasConstant = 287.05
	// roomTemperatureK is the assumed tube temperature.
	roomTemperatureK = 293.15
)

// Tube models the evacuated DHL tube.
type Tube struct {
	// Pressure inside the tube, in pascals.
	Pressure float64
	// CrossSectionArea of the tube bore, in m². The paper's cart payload
	// packs into roughly 60×60×80 mm; a 0.3 m diameter tube bounds it
	// comfortably with rail clearance.
	CrossSectionArea float64
	// DragCoefficient of the cart (bluff body, ~1.0).
	DragCoefficient float64
}

// DefaultTube is a 0.3 m bore at 1 mbar with Cd = 1.
func DefaultTube() Tube {
	r := 0.15
	return Tube{Pressure: RoughVacuumPascal, CrossSectionArea: math.Pi * r * r, DragCoefficient: 1.0}
}

// AirDensity returns the air density inside the tube (ideal gas).
func (t Tube) AirDensity() float64 {
	return t.Pressure / (airGasConstant * roomTemperatureK)
}

// AeroDragForce returns the aerodynamic drag force on the cart at speed v:
// ½ρv²·Cd·A.
func (t Tube) AeroDragForce(v units.MetresPerSecond) float64 {
	return 0.5 * t.AirDensity() * float64(v) * float64(v) * t.DragCoefficient * t.CrossSectionArea
}

// AeroEnergyLoss returns the aerodynamic energy lost cruising distance x at
// speed v.
func (t Tube) AeroEnergyLoss(v units.MetresPerSecond, x units.Metres) units.Joules {
	return units.Joules(t.AeroDragForce(v) * float64(x))
}

// PressureRatio returns the tube pressure as a fraction of one atmosphere.
func (t Tube) PressureRatio() float64 { return t.Pressure / AtmospherePascal }

// NegligibleAero reports whether aerodynamic losses over the track are below
// frac of the launch energy — the paper's justification for neglecting air
// resistance at rough vacuum.
func (t Tube) NegligibleAero(lim LIM, m units.Grams, v units.MetresPerSecond, x units.Metres, frac float64) bool {
	return float64(t.AeroEnergyLoss(v, x)) <= frac*float64(lim.LaunchEnergy(m, v))
}

// SustainingPower estimates the continuous pumping power to hold the
// operating pressure against a leak, modelled as isothermal compression of
// the in-leaking gas back to atmosphere: P = Q·ln(P₀/P), with Q the leak
// rate in Pa·m³/s. The paper's §IV-B claim — "such a vacuum can be created
// with minimal power usage because our hyperloop has a small cross-section
// area" — holds because Q scales with the (small) surface area.
func (t Tube) SustainingPower(leakPaM3PerSec float64) units.Watts {
	if leakPaM3PerSec <= 0 {
		return 0
	}
	if t.Pressure <= 0 {
		return units.Watts(math.Inf(1))
	}
	return units.Watts(leakPaM3PerSec * math.Log(AtmospherePascal/t.Pressure))
}

// TypicalLeakRate estimates the leak rate of a tube of the given length
// from a per-area specific leak of good elastomer-sealed joints
// (~1e-4 Pa·m³/s per m² of surface).
func (t Tube) TypicalLeakRate(length units.Metres) float64 {
	radius := math.Sqrt(t.CrossSectionArea / math.Pi)
	surface := 2 * math.Pi * radius * float64(length)
	return 1e-4 * surface
}

// PumpDownEnergy estimates the isothermal work to evacuate the tube of
// length L from atmosphere to the operating pressure: W = P₀·V·ln(P₀/P).
// This is a one-time cost; the paper treats maintenance power as minimal.
func (t Tube) PumpDownEnergy(length units.Metres) units.Joules {
	v := t.CrossSectionArea * float64(length)
	if t.Pressure <= 0 {
		return units.Joules(math.Inf(1))
	}
	return units.Joules(AtmospherePascal * v * math.Log(AtmospherePascal/t.Pressure))
}
