package physics

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// DefaultLIMEfficiency is the paper's linear-induction-motor efficiency
// (Table V: "LIM efficiency 75%", citing Higuchi et al.).
const DefaultLIMEfficiency = 0.75

// ErrBadEfficiency is returned for efficiencies outside (0, 1].
var ErrBadEfficiency = errors.New("physics: LIM efficiency must be in (0, 1]")

// LIM models the linear induction motor used both to accelerate and to brake
// carts (§III-B.3/4). The same motor, driven with reversed current, provides
// braking; the paper pessimistically charges braking the same energy as
// acceleration unless regenerative braking is enabled.
type LIM struct {
	// Efficiency is the electrical-to-kinetic conversion efficiency (0,1].
	Efficiency float64
	// RegenEfficiency is the fraction of braking (kinetic) energy recovered
	// electrically. 0 reproduces the paper's pessimistic default; §VI cites
	// implementations between 0.16 and 0.70.
	RegenEfficiency float64
}

// NewLIM builds a LIM with the given efficiencies.
func NewLIM(efficiency, regen float64) (LIM, error) {
	if efficiency <= 0 || efficiency > 1 {
		return LIM{}, fmt.Errorf("%w: got %v", ErrBadEfficiency, efficiency)
	}
	if regen < 0 || regen > 1 {
		return LIM{}, fmt.Errorf("physics: regenerative efficiency must be in [0, 1], got %v", regen)
	}
	return LIM{Efficiency: efficiency, RegenEfficiency: regen}, nil
}

// DefaultLIM is the paper's configuration: 75 % efficient, no regeneration.
func DefaultLIM() LIM { return LIM{Efficiency: DefaultLIMEfficiency} }

// AccelerationEnergy is the electrical energy to accelerate mass m from rest
// to speed v: ½mv²/η.
func (l LIM) AccelerationEnergy(m units.Grams, v units.MetresPerSecond) units.Joules {
	return units.Joules(float64(KineticEnergy(m, v)) / l.Efficiency)
}

// BrakingEnergy is the net electrical energy charged to brake mass m from
// speed v to rest. Without regeneration the paper charges this the same as
// acceleration; with regeneration a fraction of the kinetic energy is
// recovered (net = ½mv²/η − γ·½mv², floored at 0).
func (l LIM) BrakingEnergy(m units.Grams, v units.MetresPerSecond) units.Joules {
	ke := float64(KineticEnergy(m, v))
	net := ke/l.Efficiency - l.RegenEfficiency*ke
	if net < 0 {
		net = 0
	}
	return units.Joules(net)
}

// LaunchEnergy is the total electrical energy for one launch: accelerate then
// brake. With the paper defaults this is 2 × ½mv²/η, reproducing the Energy
// column of Table VI.
func (l LIM) LaunchEnergy(m units.Grams, v units.MetresPerSecond) units.Joules {
	return l.AccelerationEnergy(m, v) + l.BrakingEnergy(m, v)
}

// PeakPower is the peak electrical power drawn during acceleration, reached
// at the end of the ramp: F·v/η = m·a·v/η. Reproduces the Peak Power column
// of Table VI.
func (l LIM) PeakPower(m units.Grams, a units.MetresPerSecond2, v units.MetresPerSecond) units.Watts {
	return units.Watts(m.Kg() * float64(a) * float64(v) / l.Efficiency)
}

// RequiredLength is the stator length needed to reach speed v at constant
// acceleration a: v²/2a. Matches the paper's 5/20/45 m LIMs for
// 100/200/300 m/s at 1000 m/s² (Table V).
func (l LIM) RequiredLength(v units.MetresPerSecond, a units.MetresPerSecond2) units.Metres {
	return units.Metres(float64(v) * float64(v) / (2 * float64(a)))
}
