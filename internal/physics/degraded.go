package physics

import (
	"math"

	"repro/internal/units"
)

// Degraded-mode kinematics: §IV-B neglects air resistance because the tube
// holds a rough vacuum, but a leaking tube invalidates that assumption.
// When the pressure rises, cruise drag grows linearly with air density and
// quadratically with speed, eating into the control margin the braking LIM
// relies on to catch the cart inside its ramp. The degraded-mode policy is
// to cap cruise speed so that aerodynamic drag never exceeds a small
// fraction (margin) of the LIM's design thrust m·a — the cart keeps
// moving under partial vacuum, just slower, which is exactly the graceful
// degradation §III-D's failure-amelioration argument needs.

// DefaultDragMargin is the default drag/thrust fraction for degraded-mode
// operation: cruise drag may consume at most 2 % of design thrust. The
// default 282 g cart at 200 m/s sees drag of ~0.6 % of its 282 N design
// thrust at the paper's rough vacuum (1 mbar), so nominal operation keeps
// full speed with headroom; at ten millibars the cap forces a visible
// slowdown (~116 m/s), and near one atmosphere the cart crawls.
const DefaultDragMargin = 0.02

// DegradedCruiseSpeed returns the highest cruise speed at which the tube's
// aerodynamic drag stays within margin × (m·a), capped at the design
// speed. A non-positive margin falls back to DefaultDragMargin.
func DegradedCruiseSpeed(t Tube, m units.Grams, a units.MetresPerSecond2, maxSpeed units.MetresPerSecond, margin float64) units.MetresPerSecond {
	if margin <= 0 {
		margin = DefaultDragMargin
	}
	rho := t.AirDensity()
	cda := t.DragCoefficient * t.CrossSectionArea
	if rho <= 0 || cda <= 0 {
		return maxSpeed
	}
	// Drag ½ρv²CdA = margin·m·a  ⇒  v = √(2·margin·m·a / (ρ·CdA)).
	thrust := margin * m.Kg() * float64(a)
	v := units.MetresPerSecond(math.Sqrt(2 * thrust / (rho * cda)))
	if v > maxSpeed {
		return maxSpeed
	}
	return v
}
