package sneakernet

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/storage"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestCourierValidation(t *testing.T) {
	bad := DefaultCourier()
	bad.WalkingSpeed = 0
	if _, err := bad.Carry(units.PB, storage.WD22TB, 500); err == nil {
		t.Error("zero speed must be rejected")
	}
	c := DefaultCourier()
	if _, err := c.Carry(0, storage.WD22TB, 500); err == nil {
		t.Error("zero dataset must be rejected")
	}
	if _, err := c.Carry(units.PB, storage.DeviceSpec{Name: "x"}, 500); err == nil {
		t.Error("massless drive must be rejected")
	}
	heavy := storage.DeviceSpec{Name: "vault", Capacity: units.PB, Mass: 50 * units.Kilogram}
	if _, err := c.Carry(units.PB, heavy, 500); err == nil {
		t.Error("uncarriable drive must be rejected")
	}
}

func TestCarry29PBByHand(t *testing.T) {
	// §II-C: 29 PB is 1319 HDDs — "impractical without automation".
	r, err := DefaultCourier().Carry(29*units.PB, storage.WD22TB, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Drives != 1319 {
		t.Errorf("drives = %d, want 1319", r.Drives)
	}
	// 29 HDDs per 20 kg trip → 46 trips.
	if r.Trips != 46 {
		t.Errorf("trips = %d, want 46", r.Trips)
	}
	// Each trip: 1 km walk at 1.4 m/s + 120 s handling ≈ 834 s → ~10.7 h.
	approx(t, "time", float64(r.Time), 46*(1000/1.4+120), 1e-9)
	if r.Bandwidth <= 0 {
		t.Error("bandwidth must be positive")
	}
}

func TestHandCarryDollarCostEclipsesOptical(t *testing.T) {
	// §II-C: "the energy and dollar cost of moving the disks by hand would
	// likely eclipse that of optical networking." Network electricity for
	// 29 PB over route C: 299.45 MJ ≈ 83 kWh ≈ $8.3. A technician's ~11 h
	// eclipses that by orders of magnitude in wages alone.
	r, err := DefaultCourier().Carry(29*units.PB, storage.WD22TB, 500)
	if err != nil {
		t.Fatal(err)
	}
	netKWh := float64(netmodel.ScenarioC.Power().Energy(29*units.PB)) / 3.6e6
	netDollars := netKWh * 0.10
	if float64(r.LaborCost) < 10*netDollars {
		t.Errorf("labor %v should eclipse network electricity $%.2f", r.LaborCost, netDollars)
	}
}

func TestDHLBeatsSneakernet(t *testing.T) {
	// The DHL moves the same 29 PB in ~33 min vs the courier's ~11 h, with
	// less energy than the courier's lunch.
	courier, err := DefaultCourier().Carry(29*units.PB, storage.WD22TB, 500)
	if err != nil {
		t.Fatal(err)
	}
	dhl, err := core.Transfer(core.DefaultConfig(), 29*units.PB)
	if err != nil {
		t.Fatal(err)
	}
	if dhl.Time >= courier.Time {
		t.Errorf("DHL %v should beat courier %v", dhl.Time, courier.Time)
	}
	if dhl.Energy >= courier.MetabolicEnergy {
		t.Errorf("DHL %v should undercut courier metabolic %v", dhl.Energy, courier.MetabolicEnergy)
	}
}

func TestSnowmobileShipsHundredPBInWeeks(t *testing.T) {
	// §VII-B: Snowmobile ships "over 100 PB of data in only up to a few
	// weeks' time". 100 PB over 500 km:
	r, err := Snowmobile().Ship(100*units.PB, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shipments != 1 {
		t.Errorf("shipments = %d", r.Shipments)
	}
	days := r.Time.Days()
	if days < 7 || days > 28 {
		t.Errorf("shipment takes %.1f days, want 1–4 weeks", days)
	}
	// Fill time dominates over the drive.
	fill := (1000 * units.Gbps).BytesPerSecond().TransferTime(100 * units.PB)
	if float64(r.Time) < float64(fill) {
		t.Error("total must include at least the fill")
	}
}

func TestTruckValidationAndMultiShipment(t *testing.T) {
	if _, err := (Truck{}).Ship(units.PB, 1000); err == nil {
		t.Error("zero truck must be rejected")
	}
	if _, err := Snowmobile().Ship(0, 1000); err == nil {
		t.Error("zero dataset must be rejected")
	}
	r, err := Snowmobile().Ship(250*units.PB, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shipments != 3 {
		t.Errorf("shipments = %d, want 3", r.Shipments)
	}
	if r.FuelEnergy <= 0 {
		t.Error("fuel energy must be positive")
	}
	// Fuel for 3 × 200 km at 15 MJ/km = 9 GJ.
	approx(t, "fuel", float64(r.FuelEnergy), 3*2*100_000*15e3, 1e-9)
}

func TestFrictionLimitedEnergyComparison(t *testing.T) {
	// §VII-B: "All of these methods limit energy savings due to
	// friction-limited movement." Per byte, the truck burns orders of
	// magnitude more than the DHL for a comparable task.
	truck, err := Snowmobile().Ship(100*units.PB, 1000)
	if err != nil {
		t.Fatal(err)
	}
	dhlCfg := core.DefaultConfig()
	dhlCfg.Length = 1000
	dhl, err := core.Transfer(dhlCfg, 100*units.PB)
	if err != nil {
		t.Fatal(err)
	}
	truckJPerB := float64(truck.FuelEnergy) / 100e15
	dhlJPerB := float64(dhl.Energy) / 100e15
	if truckJPerB <= 2*dhlJPerB {
		t.Errorf("truck %.3g J/B should exceed DHL %.3g J/B", truckJPerB, dhlJPerB)
	}
	// And the decisive gap is delivery bandwidth: the truck's fill time
	// caps it at ~60 GB/s while the DHL sustains tens of TB/s.
	dhlBW := float64(100*units.PB) / float64(dhl.Time)
	if dhlBW < 100*float64(truck.Bandwidth) {
		t.Errorf("DHL %v B/s should be ≫ truck %v", dhlBW, truck.Bandwidth)
	}
}
