// Package sneakernet models the embodied-movement baselines the paper
// dismisses on the way to DHLs (§II-C, §VII-B): carrying disks by hand
// ("the energy and dollar cost of moving the disks by hand would likely
// eclipse that of optical networking") and truck-scale shipping à la AWS
// Snowmobile ("shipping over 100 PB of data in only up to a few weeks'
// time"). Both are friction-limited, which is exactly the inefficiency the
// maglev design removes.
package sneakernet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/storage"
	"repro/internal/units"
)

// HumanCourier is a person walking drives across the data centre.
type HumanCourier struct {
	// WalkingSpeed, m/s.
	WalkingSpeed units.MetresPerSecond
	// CarryMass per trip.
	CarryMass units.Grams
	// MetabolicPower while walking loaded, watts (≈400 W for brisk loaded
	// walking; the joules are food, but they are joules).
	MetabolicPower units.Watts
	// HourlyWage in USD per hour.
	HourlyWage units.USDPerHour
	// HandlingPerTrip is the load/unload time at each end.
	HandlingPerTrip units.Seconds
}

// DefaultCourier is a realistic data-centre technician.
func DefaultCourier() HumanCourier {
	return HumanCourier{
		WalkingSpeed:    1.4,
		CarryMass:       20 * units.Kilogram,
		MetabolicPower:  400,
		HourlyWage:      40,
		HandlingPerTrip: 120,
	}
}

// Validate checks the courier parameters.
func (h HumanCourier) Validate() error {
	if h.WalkingSpeed <= 0 || h.CarryMass <= 0 || h.MetabolicPower <= 0 ||
		h.HourlyWage <= 0 || h.HandlingPerTrip < 0 {
		return errors.New("sneakernet: courier parameters must be positive")
	}
	return nil
}

// CarryResult is the cost of a by-hand transfer.
type CarryResult struct {
	Drives int
	Trips  int
	// Time walking plus handling (one courier, round trips).
	Time units.Seconds
	// MetabolicEnergy burned.
	MetabolicEnergy units.Joules
	// LaborCost at the wage.
	LaborCost units.USD
	// Bandwidth delivered.
	Bandwidth units.BytesPerSecond
}

// Carry computes moving a dataset on the given drive type over a distance.
func (h HumanCourier) Carry(dataset units.Bytes, drive storage.DeviceSpec, distance units.Metres) (CarryResult, error) {
	if err := h.Validate(); err != nil {
		return CarryResult{}, err
	}
	if dataset <= 0 || distance <= 0 {
		return CarryResult{}, errors.New("sneakernet: dataset and distance must be positive")
	}
	if drive.Capacity <= 0 || drive.Mass <= 0 {
		return CarryResult{}, fmt.Errorf("sneakernet: drive %q needs capacity and mass", drive.Name)
	}
	drives := drive.DrivesFor(dataset)
	perTrip := int(float64(h.CarryMass) / float64(drive.Mass))
	if perTrip < 1 {
		return CarryResult{}, fmt.Errorf("sneakernet: a %v drive exceeds the %v carry limit",
			drive.Mass, h.CarryMass)
	}
	trips := int(math.Ceil(float64(drives) / float64(perTrip)))
	// Each trip is a loaded walk out and an empty walk back.
	walk := units.Seconds(2 * float64(distance) / float64(h.WalkingSpeed))
	perTripTime := walk + h.HandlingPerTrip
	total := units.Seconds(float64(trips) * float64(perTripTime))
	return CarryResult{
		Drives:          drives,
		Trips:           trips,
		Time:            total,
		MetabolicEnergy: units.Energy(h.MetabolicPower, total),
		LaborCost:       h.HourlyWage.Cost(total),
		Bandwidth:       units.BytesPerSecond(float64(dataset) / float64(total)),
	}, nil
}

// Truck is a Snowmobile-class bulk shipment.
type Truck struct {
	// Capacity of the container (Snowmobile: 100 PB).
	Capacity units.Bytes
	// Speed on the road, m/s.
	Speed units.MetresPerSecond
	// LoadRate: how fast data is copied in/out of the container at each
	// end (Snowmobile used up to 1 Tb/s fill).
	LoadRate units.BytesPerSecond
	// DieselPerMetre: energy per metre travelled, J/m (heavy trucks run
	// ≈ 15 MJ/km fully loaded).
	DieselPerMetre float64
}

// Snowmobile is the AWS reference point.
func Snowmobile() Truck {
	return Truck{
		Capacity:       100 * units.PB,
		Speed:          25, // 90 km/h
		LoadRate:       (1000 * units.Gbps).BytesPerSecond(),
		DieselPerMetre: 15e3,
	}
}

// ShipResult is the cost of a trucked transfer.
type ShipResult struct {
	Shipments int
	// Time covers fill, drive, and drain for all shipments (serial, one
	// truck).
	Time units.Seconds
	// FuelEnergy burned on the road.
	FuelEnergy units.Joules
	Bandwidth  units.BytesPerSecond
}

// Ship computes moving a dataset over a road distance.
func (t Truck) Ship(dataset units.Bytes, distance units.Metres) (ShipResult, error) {
	if t.Capacity <= 0 || t.Speed <= 0 || t.LoadRate <= 0 || t.DieselPerMetre <= 0 {
		return ShipResult{}, errors.New("sneakernet: truck parameters must be positive")
	}
	if dataset <= 0 || distance <= 0 {
		return ShipResult{}, errors.New("sneakernet: dataset and distance must be positive")
	}
	shipments := int(math.Ceil(float64(dataset) / float64(t.Capacity)))
	perShipment := dataset
	if units.Bytes(shipments) > 1 {
		perShipment = t.Capacity
	}
	fill := t.LoadRate.TransferTime(perShipment)
	drive := units.Seconds(2 * float64(distance) / float64(t.Speed)) // return empty
	per := 2*fill + drive                                            // fill + drive + drain
	total := units.Seconds(float64(shipments) * float64(per))
	return ShipResult{
		Shipments:  shipments,
		Time:       total,
		FuelEnergy: units.Joules(float64(shipments) * 2 * float64(distance) * t.DieselPerMetre),
		Bandwidth:  units.BytesPerSecond(float64(dataset) / float64(total)),
	}, nil
}
