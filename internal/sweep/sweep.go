// Package sweep is the parallel design-space exploration engine: a generic,
// pure-stdlib bounded worker pool for evaluating independent model points
// concurrently with deterministic, input-ordered results.
//
// Every sweep in the repository — the Table VI design space, the ablations,
// the §V-E minimum-spec search, and the Figure 6 iso-power curves — is a map
// of a pure evaluation function over a slice (or cartesian grid) of
// configurations. sweep.Map runs that map over GOMAXPROCS workers by
// default, lands each result at its input index regardless of completion
// order, cancels outstanding work on the first error, and returns output
// indistinguishable from a plain sequential loop.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Option configures a sweep.
type Option func(*options)

type options struct {
	workers int
}

// Workers bounds the worker pool at n goroutines. n <= 0 selects the
// default, runtime.GOMAXPROCS(0). Workers(1) runs the sweep as a plain
// inline loop with no goroutines — the sequential reference path.
func Workers(n int) Option {
	return func(o *options) { o.workers = n }
}

func resolve(opts []Option) options {
	o := options{}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// ErrNilFunc is returned when Map is given a nil evaluation function.
var ErrNilFunc = errors.New("sweep: nil evaluation function")

// failure is the first-error slot of one parallel sweep. The out slice is
// index-partitioned — each worker writes only indices it claimed, so it
// needs no lock — but the failure slot is the one cell every worker may
// race on, hence the mutex and the lockcheck annotations.
type failure struct {
	mu sync.Mutex
	//dhllint:guardedby mu
	idx int
	//dhllint:guardedby mu
	err error
}

// record keeps the error of the lowest-indexed failing item, matching what
// a sequential loop would surface first.
func (f *failure) record(i int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil || i < f.idx {
		f.idx, f.err = i, err
	}
}

// get returns the recorded failure, if any.
func (f *failure) get() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.idx, f.err
}

// Map evaluates fn over every item on a bounded worker pool and returns the
// results in input order: out[i] = fn(ctx, items[i]) regardless of which
// worker finished first. The pool size defaults to GOMAXPROCS and is capped
// at len(items); Workers(1) degenerates to a plain sequential loop.
//
// On failure the sweep stops dispatching new items, cancels the derived
// context handed to in-flight calls, and returns the error of the
// lowest-indexed failing item among those evaluated (which, for a
// deterministic fn, is the same error a sequential loop would surface).
// Cancellation of the parent ctx is propagated as ctx.Err().
func Map[I, O any](ctx context.Context, items []I, fn func(context.Context, I) (O, error), opts ...Option) ([]O, error) {
	if fn == nil {
		return nil, ErrNilFunc
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	workers := resolve(opts).workers
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o, err := fn(ctx, items[i])
			if err != nil {
				return nil, fmt.Errorf("sweep: item %d: %w", i, err)
			}
			out[i] = o
		}
		return out, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		fl   failure
		wg   sync.WaitGroup
	)
	fail := func(i int, err error) {
		fl.record(i, err)
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || wctx.Err() != nil {
					return
				}
				o, err := fn(wctx, items[i])
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = o
			}
		}()
	}
	wg.Wait()
	idx, err := fl.get()
	if err != nil {
		return nil, fmt.Errorf("sweep: item %d: %w", idx, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Grid is an N-dimensional cartesian index space for factorial sweeps. A
// Grid with dims (a, b, c) enumerates a×b×c points in row-major order: the
// last axis varies fastest, matching a nest of for loops with axis 0
// outermost.
type Grid struct {
	dims []int
}

// NewGrid builds a grid with the given axis sizes. Every axis must have at
// least one point.
func NewGrid(dims ...int) (Grid, error) {
	if len(dims) == 0 {
		return Grid{}, errors.New("sweep: grid needs at least one axis")
	}
	for i, d := range dims {
		if d < 1 {
			return Grid{}, fmt.Errorf("sweep: grid axis %d has size %d, need ≥ 1", i, d)
		}
	}
	return Grid{dims: append([]int(nil), dims...)}, nil
}

// Dims returns a copy of the axis sizes.
func (g Grid) Dims() []int { return append([]int(nil), g.dims...) }

// Size is the total number of grid points.
func (g Grid) Size() int {
	if len(g.dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range g.dims {
		n *= d
	}
	return n
}

// Coord decodes a flat row-major index into per-axis coordinates.
func (g Grid) Coord(flat int) []int {
	c := make([]int, len(g.dims))
	for i := len(g.dims) - 1; i >= 0; i-- {
		c[i] = flat % g.dims[i]
		flat /= g.dims[i]
	}
	return c
}

// MapGrid evaluates fn at every grid point on the worker pool, returning
// results in row-major order. fn receives the point's per-axis coordinates.
func MapGrid[O any](ctx context.Context, g Grid, fn func(context.Context, []int) (O, error), opts ...Option) ([]O, error) {
	if fn == nil {
		return nil, ErrNilFunc
	}
	idx := make([]int, g.Size())
	for i := range idx {
		idx[i] = i
	}
	return Map(ctx, idx, func(ctx context.Context, i int) (O, error) {
		return fn(ctx, g.Coord(i))
	}, opts...)
}

// Cache is a concurrency-safe, single-flight memoization table for repeated
// evaluations within a sweep (e.g. the same core.Launch(Config) appearing at
// many grid points). The first Do for a key runs fn exactly once — even
// under concurrent callers, which block until it completes — and every later
// Do returns the memoized value. Errors are memoized too: the evaluation
// functions in this repository are deterministic in their key.
//
// The zero Cache is ready to use.
type Cache[K comparable, V any] struct {
	m      sync.Map // K → *cacheEntry[V]
	keys   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry[V any] struct {
	once sync.Once
	v    V
	err  error
}

// Do returns the memoized result for key, computing it with fn on first use.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	e, loaded := c.m.Load(key)
	if !loaded {
		e, loaded = c.m.LoadOrStore(key, new(cacheEntry[V]))
		if !loaded {
			c.keys.Add(1)
		}
	}
	entry := e.(*cacheEntry[V])
	computed := false
	entry.once.Do(func() {
		entry.v, entry.err = fn()
		computed = true
	})
	if computed {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return entry.v, entry.err
}

// Len is the number of distinct keys memoized so far.
func (c *Cache[K, V]) Len() int { return int(c.keys.Load()) }

// Stats reports how many Do calls were served from the cache (hits) and how
// many computed fresh values (misses).
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
