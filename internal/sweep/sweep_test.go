package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapMatchesSequentialLoop(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i
	}
	fn := func(_ context.Context, i int) (int, error) {
		// Skew completion order: earlier items finish later.
		if i < 8 {
			time.Sleep(time.Duration(8-i) * time.Millisecond)
		}
		return i*i + 1, nil
	}
	want := make([]int, len(items))
	for i, it := range items {
		o, err := fn(context.Background(), it)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = o
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(context.Background(), items, fn, Workers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential loop", workers)
		}
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	got, err := Map(context.Background(), nil, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
	if _, err := Map[int, int](context.Background(), []int{1}, nil); !errors.Is(err, ErrNilFunc) {
		t.Fatalf("nil fn: got %v, want ErrNilFunc", err)
	}
}

func TestMapFirstErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	fn := func(_ context.Context, i int) (int, error) {
		if i == 41 || i == 87 {
			return 0, fmt.Errorf("item-%d: %w", i, boom)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), items, fn, Workers(workers))
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
		// With a deterministic fn the lowest failing index is reported.
		if workers == 1 && err.Error() != "sweep: item 41: item-41: boom" {
			t.Fatalf("sequential error = %q", err)
		}
	}
}

func TestMapErrorCancelsOutstandingWork(t *testing.T) {
	var evaluated atomic.Int64
	items := make([]int, 10_000)
	for i := range items {
		items[i] = i
	}
	_, err := Map(context.Background(), items, func(_ context.Context, i int) (int, error) {
		evaluated.Add(1)
		if i == 0 {
			return 0, errors.New("early failure")
		}
		return i, nil
	}, Workers(8))
	if err == nil {
		t.Fatal("want error")
	}
	if n := evaluated.Load(); n == int64(len(items)) {
		t.Fatalf("error did not cancel the sweep: all %d items evaluated", n)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []int{1, 2, 3}
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, items, func(context.Context, int) (int, error) { return 0, nil }, Workers(workers))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	g, err := NewGrid(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 12 {
		t.Fatalf("size = %d, want 12", g.Size())
	}
	// Row-major: the same order as three nested loops, axis 0 outermost.
	var want [][]int
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 2; c++ {
				want = append(want, []int{a, b, c})
			}
		}
	}
	got, err := MapGrid(context.Background(), g, func(_ context.Context, coord []int) ([]int, error) {
		return append([]int(nil), coord...), nil
	}, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grid order:\n got %v\nwant %v", got, want)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Fatal("no axes: want error")
	}
	if _, err := NewGrid(3, 0); err == nil {
		t.Fatal("zero axis: want error")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[int, int]
	var calls atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 32
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(7, func() (int, error) {
				calls.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 49, nil
			})
			if err != nil || v != 49 {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("stats = %d hits, %d misses; want %d, 1", hits, misses, goroutines-1)
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	var c Cache[string, int]
	var calls int
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Do("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: got %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}
