package telemetry

// Quantile estimates the q-quantile (q in [0,1]) of a snapshot histogram
// by linear interpolation inside the containing bucket, the same estimator
// Prometheus's histogram_quantile uses: observations are assumed uniform
// within a bucket, the first bucket spans [0, bound], and ranks past the
// last finite bound clamp to that bound (the +Inf bucket has no width to
// interpolate into). Pure arithmetic over the snapshot — callers may use
// it in deterministic report paths.
func Quantile(h HistogramPoint, q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	lowerBound := 0.0
	var lowerCum uint64
	for _, b := range h.Buckets {
		if rank <= float64(b.Count) {
			if b.Count == lowerCum {
				return b.UpperBound
			}
			frac := (rank - float64(lowerCum)) / float64(b.Count-lowerCum)
			return lowerBound + (b.UpperBound-lowerBound)*frac
		}
		lowerBound, lowerCum = b.UpperBound, b.Count
	}
	// Rank falls in the +Inf bucket: clamp to the largest finite bound.
	return h.Buckets[len(h.Buckets)-1].UpperBound
}
