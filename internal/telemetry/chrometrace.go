package telemetry

import (
	"encoding/json"
	"sort"
)

// Chrome trace_event exporter: renders a SpanLog as the JSON object format
// understood by chrome://tracing and Perfetto. Simulated seconds map to
// trace microseconds (the format's native unit), tracks map to thread
// lanes, and all events are emitted in non-decreasing timestamp order —
// the invariant cmd/dhltracecheck validates in CI.

// chromeEvent is one trace_event entry. Field order fixes the marshalled
// byte layout; Args is an ordered-KV rendering, never a Go map.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  *float64        `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	S    string          `json:"s,omitempty"`
	Args json.RawMessage `json:"args,omitempty"`
}

// chromeTraceFile is the top-level trace object.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// secondsToMicros converts simulated seconds to trace microseconds.
func secondsToMicros(s float64) float64 { return s * 1e6 }

// argsJSON renders ordered KV pairs as a JSON object, preserving order.
func argsJSON(kv []KV) json.RawMessage {
	if len(kv) == 0 {
		return nil
	}
	buf := []byte{'{'}
	for i, p := range kv {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, _ := json.Marshal(p.Key)
		v, _ := json.Marshal(p.Value)
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	buf = append(buf, '}')
	return buf
}

// ChromeTrace renders the span log as Chrome trace_event JSON. The output
// is byte-deterministic for a given log: tracks get thread IDs in
// first-appearance order (named via thread_name metadata), and events are
// sorted by timestamp with recording order breaking ties. A nil log
// yields an empty (but valid) trace.
func ChromeTrace(l *SpanLog) ([]byte, error) {
	const pid = 1
	tids := make(map[string]int)
	var events []chromeEvent
	for i, track := range l.Tracks() {
		tid := i + 1
		tids[track] = tid
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  pid,
			Tid:  tid,
			Args: argsJSON([]KV{{Key: "name", Value: track}}),
		})
	}
	var timed []chromeEvent
	for _, s := range l.SortedSpans() {
		dur := secondsToMicros(float64(s.End - s.Start))
		d := dur
		timed = append(timed, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   secondsToMicros(float64(s.Start)),
			Dur:  &d,
			Pid:  pid,
			Tid:  tids[s.Track],
			Args: argsJSON(s.Args),
		})
	}
	l.EachInstant(func(in Instant) {
		timed = append(timed, chromeEvent{
			Name: in.Name,
			Ph:   "i",
			Ts:   secondsToMicros(float64(in.At)),
			Pid:  pid,
			Tid:  tids[in.Track],
			S:    "t",
			Args: argsJSON(in.Args),
		})
	})
	// Merge to one non-decreasing timeline; stable sort keeps the
	// deterministic recording order for ties.
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].Ts < timed[j].Ts })
	events = append(events, timed...)
	f := chromeTraceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	if f.TraceEvents == nil {
		f.TraceEvents = []chromeEvent{}
	}
	return json.MarshalIndent(f, "", " ")
}
