package telemetry

import (
	"fmt"
	"strings"
)

// Plain-text summary exporter: the human-facing table cmd/dhlsim prints
// with -metrics. Deterministic like every other export path (snapshots
// are name-sorted; span aggregation walks tracks and names in
// first-appearance order, which recording order fixes).

// SummaryTable renders the snapshot as aligned text: counters and gauges
// as name/value rows, histograms as name/count/sum/mean rows.
func SummaryTable(s Snapshot) string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		w := nameWidth(len("name"), counterNames(s.Counters))
		fmt.Fprintf(&b, "  %-*s %s\n", w, "name", "value")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-*s %g\n", w, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		w := nameWidth(len("name"), gaugeNames(s.Gauges))
		fmt.Fprintf(&b, "  %-*s %s\n", w, "name", "value")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-*s %g\n", w, g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		w := nameWidth(len("name"), histNames(s.Histograms))
		fmt.Fprintf(&b, "  %-*s %-8s %-14s %s\n", w, "name", "count", "sum", "mean")
		for _, h := range s.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-*s %-8d %-14.6g %.6g\n", w, h.Name, h.Count, h.Sum, mean)
		}
	}
	return b.String()
}

// SpanSummary aggregates the span log per (track, name): span count and
// total duration, rendered as an aligned table in first-appearance order.
func SpanSummary(l *SpanLog) string {
	if l.Len() == 0 {
		return ""
	}
	type agg struct {
		track, name string
		count       int
		total       float64
	}
	index := make(map[string]int)
	var rows []agg
	l.EachSpan(func(s Span) {
		key := s.Track + "\x00" + s.Name
		i, ok := index[key]
		if !ok {
			i = len(rows)
			index[key] = i
			rows = append(rows, agg{track: s.Track, name: s.Name})
		}
		rows[i].count++
		rows[i].total += float64(s.End - s.Start)
	})
	var b strings.Builder
	b.WriteString("spans:\n")
	tw, nw := len("track"), len("name")
	for _, r := range rows {
		if len(r.track) > tw {
			tw = len(r.track)
		}
		if len(r.name) > nw {
			nw = len(r.name)
		}
	}
	fmt.Fprintf(&b, "  %-*s %-*s %-8s %s\n", tw, "track", nw, "name", "count", "total-s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s %-*s %-8d %.3f\n", tw, r.track, nw, r.name, r.count, r.total)
	}
	if n := l.NumInstants(); n > 0 {
		fmt.Fprintf(&b, "  (+%d instant events)\n", n)
	}
	return b.String()
}

func nameWidth(w int, names []string) int {
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}

func counterNames(ps []CounterPoint) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func gaugeNames(ps []GaugePoint) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func histNames(ps []HistogramPoint) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}
