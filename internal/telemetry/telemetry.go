// Package telemetry is the deterministic observability layer for the DHL
// stack: a metrics registry (counters, gauges, fixed-bucket histograms)
// and a span log, both keyed to *simulated* time, with exporters to Chrome
// trace_event JSON, Prometheus text exposition, and a plain-text summary
// table.
//
// Two properties distinguish it from a wall-clock metrics library:
//
//   - Determinism. Snapshots and exports are byte-identical across runs of
//     the same simulation: metric names are emitted in sorted order, spans
//     in sim-time order, and nothing ever reads the wall clock, the global
//     RNG, or the environment. The package is registered as a dhllint
//     model package, so those invariants are enforced statically.
//
//   - Zero cost when disabled. Every method is nil-safe: a nil *Registry
//     hands out nil *Counter/*Gauge/*Histogram handles, and operations on
//     nil handles (and a nil *SpanLog) are no-ops. An uninstrumented run
//     pays only nil-pointer checks; the overhead budget is recorded in
//     BENCH_telemetry.json.
package telemetry

// Set bundles the two collectors a simulation carries: the metrics
// registry and the span log. A nil *Set (or nil fields) disables the
// corresponding telemetry with no further configuration.
type Set struct {
	Metrics *Registry
	Spans   *SpanLog
}

// NewSet returns a Set with both collectors enabled.
func NewSet() *Set {
	return &Set{Metrics: NewRegistry(), Spans: NewSpanLog()}
}

// Reset clears both collectors for reuse while keeping their backing
// storage — the pooling path for drivers that run many simulations
// against one long-lived Set (sweeps, benchmarks, servers): the next run
// records into recycled buffers instead of reallocating them. Safe on a
// nil set.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	s.Metrics.Reset()
	s.Spans.Reset()
}

// MetricsOf returns the metrics registry of a possibly-nil set.
func (s *Set) MetricsOf() *Registry {
	if s == nil {
		return nil
	}
	return s.Metrics
}

// SpansOf returns the span log of a possibly-nil set.
func (s *Set) SpansOf() *SpanLog {
	if s == nil {
		return nil
	}
	return s.Spans
}
