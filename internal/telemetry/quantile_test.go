package telemetry

import (
	"math"
	"testing"
)

func TestQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 0.2, 0.4, 0.8})
	// 10 observations uniform in the first bucket, 10 in the third.
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
		h.Observe(0.3)
	}
	hp := r.Snapshot().Histograms[0]

	// Median sits exactly at the first bucket's upper bound.
	if got := Quantile(hp, 0.5); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("p50 = %v, want 0.1", got)
	}
	// p75 is halfway through the (0.2, 0.4] bucket's mass.
	if got := Quantile(hp, 0.75); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("p75 = %v, want 0.3", got)
	}
	// p100 reaches the top of the occupied bucket.
	if got := Quantile(hp, 1); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("p100 = %v, want 0.4", got)
	}
	// q clamps.
	if got := Quantile(hp, -1); got != Quantile(hp, 0) {
		t.Errorf("negative q should clamp: %v", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(HistogramPoint{}, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(10) // lands in +Inf
	h.Observe(10)
	hp := r.Snapshot().Histograms[0]
	// All mass beyond the last finite bound: clamp there.
	if got := Quantile(hp, 0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
	// A bucket with zero width of probability (cum == lowerCum) cannot
	// divide by zero.
	r2 := NewRegistry()
	h2 := r2.Histogram("one", []float64{1, 2, 3})
	h2.Observe(2.5)
	hp2 := r2.Snapshot().Histograms[0]
	if got := Quantile(hp2, 0); math.IsNaN(got) {
		t.Error("q=0 produced NaN")
	}
}
