package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSpanLogRecordsAndSorts(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-1", "transit", 10, 30, KV{Key: "dir", Value: "outbound"})
	l.Span("cart-0", "undock", 0, 5)
	l.Span("cart-0", "transit", 5, 25)
	l.Mark("faults", "ssd-failure", 12)
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	sorted := l.SortedSpans()
	if sorted[0].Name != "undock" || sorted[1].Name != "transit" || sorted[1].Track != "cart-0" {
		t.Errorf("sort order wrong: %+v", sorted)
	}
	tracks := l.Tracks()
	want := []string{"cart-1", "cart-0", "faults"}
	if len(tracks) != len(want) {
		t.Fatalf("tracks = %v, want %v", tracks, want)
	}
	for i := range want {
		if tracks[i] != want[i] {
			t.Errorf("tracks[%d] = %q, want %q", i, tracks[i], want[i])
		}
	}
}

func TestSpanInvertedIntervalClamped(t *testing.T) {
	l := NewSpanLog()
	l.Span("x", "weird", 10, 5)
	s := l.Spans()[0]
	if s.End != s.Start {
		t.Errorf("inverted span not clamped: %+v", s)
	}
}

func TestNilSpanLogIsNoOp(t *testing.T) {
	var l *SpanLog
	l.Span("a", "b", 0, 1)
	l.Mark("a", "c", 2)
	if l.Len() != 0 || l.Spans() != nil || l.Instants() != nil || l.Tracks() != nil {
		t.Error("nil span log must stay empty")
	}
	b, err := ChromeTrace(l)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Error("nil-log trace is not valid JSON")
	}
}

// traceShape mirrors the subset of trace_event JSON the tests inspect.
type traceShape struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceStructure(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-0", "undock", 0, 5)
	l.Span("cart-0", "transit", 5, 25, KV{Key: "degraded", Value: "true"})
	l.Mark("faults", "vacuum-leak", 7, KV{Key: "pressure", Value: "5000Pa"})
	b, err := ChromeTrace(l)
	if err != nil {
		t.Fatal(err)
	}
	var tr traceShape
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace is not parseable JSON: %v", err)
	}
	var meta, complete, instant int
	lastTs := math.Inf(-1)
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur < 0 {
				t.Errorf("negative dur on %q", e.Name)
			}
		case "i":
			instant++
		}
		if e.Ph != "M" {
			if e.Ts < lastTs {
				t.Errorf("timestamps not monotone at %q: %v after %v", e.Name, e.Ts, lastTs)
			}
			lastTs = e.Ts
		}
	}
	if meta != 2 || complete != 2 || instant != 1 {
		t.Errorf("event mix = %d meta, %d complete, %d instant; want 2/2/1", meta, complete, instant)
	}
	// Sim seconds → trace microseconds.
	if !strings.Contains(string(b), `"ts": 5e+06`) && !strings.Contains(string(b), `"ts": 5000000`) {
		t.Errorf("expected 5 s span start at 5e6 µs:\n%s", b)
	}
	// Args keep KV order and content.
	if !strings.Contains(string(b), `"pressure": "5000Pa"`) {
		t.Errorf("instant args missing:\n%s", b)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() string {
		l := NewSpanLog()
		l.Span("cart-1", "transit", 3, 9)
		l.Span("cart-0", "transit", 1, 4, KV{Key: "k", Value: "v"})
		l.Mark("faults", "stall", 2)
		b, err := ChromeTrace(l)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := build(), build(); a != b {
		t.Errorf("trace differs between identical logs:\n%s\nvs\n%s", a, b)
	}
}

func TestSpanSummary(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-0", "transit", 0, 10)
	l.Span("cart-0", "transit", 20, 35)
	l.Mark("faults", "stall", 5)
	out := SpanSummary(l)
	if !strings.Contains(out, "transit") || !strings.Contains(out, "25.000") {
		t.Errorf("span summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "+1 instant") {
		t.Errorf("instants not counted:\n%s", out)
	}
	if SpanSummary(nil) != "" {
		t.Error("nil log summary should be empty")
	}
}

func TestSpanArgsCopiedNotRetained(t *testing.T) {
	l := NewSpanLog()
	args := []KV{{Key: "site", Value: "library"}}
	l.Span("cart-0", "undock", 0, 5, args...)
	l.Mark("faults", "stall", 3, args...)
	args[0] = KV{Key: "clobbered", Value: "yes"}
	if got := l.Spans()[0].Args[0]; got.Key != "site" || got.Value != "library" {
		t.Errorf("span retained the caller's args slice: %+v", got)
	}
	if got := l.Instants()[0].Args[0]; got.Key != "site" || got.Value != "library" {
		t.Errorf("instant retained the caller's args slice: %+v", got)
	}
}

func TestArgSlabSurvivesChunkRollover(t *testing.T) {
	// Force several slab chunks and verify early views stay intact: the
	// slab only appends within a chunk, so a rollover must never move or
	// overwrite annotations already handed out.
	l := NewSpanLog()
	n := argSlabChunk*2 + 7
	for i := 0; i < n; i++ {
		l.Span("t", "s", 0, 1,
			KV{Key: "i", Value: strconvItoa(i)},
			KV{Key: "j", Value: strconvItoa(i + 1)})
	}
	spans := l.Spans()
	for i, s := range spans {
		if len(s.Args) != 2 || s.Args[0].Value != strconvItoa(i) || s.Args[1].Value != strconvItoa(i+1) {
			t.Fatalf("span %d args corrupted after rollover: %+v", i, s.Args)
		}
	}
}

// strconvItoa avoids importing strconv solely for the rollover test.
func strconvItoa(i int) string { return string(rune('A' + i%26)) }

func TestEachMatchesCopyingAccessors(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-1", "transit", 3, 9)
	l.Span("cart-0", "transit", 1, 4, KV{Key: "k", Value: "v"})
	l.Mark("faults", "stall", 2, KV{Key: "delay_s", Value: "5"})
	l.Mark("faults", "leak", 6)

	var iterSpans []Span
	l.EachSpan(func(s Span) { iterSpans = append(iterSpans, s) })
	copySpans := l.Spans()
	if len(iterSpans) != len(copySpans) || len(iterSpans) != l.NumSpans() {
		t.Fatalf("EachSpan yielded %d spans, Spans %d, NumSpans %d",
			len(iterSpans), len(copySpans), l.NumSpans())
	}
	for i := range copySpans {
		a, b := iterSpans[i], copySpans[i]
		if a.Track != b.Track || a.Name != b.Name || len(a.Args) != len(b.Args) {
			t.Errorf("span %d differs between paths: %+v vs %+v", i, a, b)
		}
	}
	var iterInstants []Instant
	l.EachInstant(func(in Instant) { iterInstants = append(iterInstants, in) })
	copyInstants := l.Instants()
	if len(iterInstants) != len(copyInstants) || len(iterInstants) != l.NumInstants() {
		t.Fatalf("EachInstant yielded %d, Instants %d, NumInstants %d",
			len(iterInstants), len(copyInstants), l.NumInstants())
	}
	for i := range copyInstants {
		a, b := iterInstants[i], copyInstants[i]
		if a.Track != b.Track || a.Name != b.Name || a.At != b.At || len(a.Args) != len(b.Args) {
			t.Errorf("instant %d differs between paths: %+v vs %+v", i, a, b)
		}
	}

	// Nil receivers: zero counts, no callbacks.
	var nilLog *SpanLog
	if nilLog.NumSpans() != 0 || nilLog.NumInstants() != 0 {
		t.Error("nil log counts must be zero")
	}
	nilLog.EachSpan(func(Span) { t.Error("EachSpan callback on nil log") })
	nilLog.EachInstant(func(Instant) { t.Error("EachInstant callback on nil log") })
}

// TestExportersByteIdenticalToCopyPath pins the exporter output against a
// reference render built from the copying accessors — the iteration path
// must not change a single byte of either export format.
func TestExportersByteIdenticalToCopyPath(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-0", "undock", 0, 5, KV{Key: "site", Value: "library"})
	l.Span("cart-1", "transit", 5, 25, KV{Key: "degraded", Value: "true"})
	l.Span("cart-0", "transit", 5, 20)
	l.Mark("faults", "vacuum-leak", 7, KV{Key: "pressure", Value: "5000Pa"})
	l.Mark("faults", "stall", 9)

	// Reference: a second log rebuilt through the copying accessors holds
	// equal data, so both exports must serialise identically.
	ref := NewSpanLog()
	for _, s := range l.Spans() {
		ref.Span(s.Track, s.Name, s.Start, s.End, s.Args...)
	}
	for _, in := range l.Instants() {
		ref.Mark(in.Track, in.Name, in.At, in.Args...)
	}

	got, err := ChromeTrace(l)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ChromeTrace(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("ChromeTrace differs from copy-path reference:\n%s\nvs\n%s", got, want)
	}
	if a, b := SpanSummary(l), SpanSummary(ref); a != b {
		t.Errorf("SpanSummary differs from copy-path reference:\n%s\nvs\n%s", a, b)
	}
}
