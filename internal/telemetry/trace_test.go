package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSpanLogRecordsAndSorts(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-1", "transit", 10, 30, KV{Key: "dir", Value: "outbound"})
	l.Span("cart-0", "undock", 0, 5)
	l.Span("cart-0", "transit", 5, 25)
	l.Mark("faults", "ssd-failure", 12)
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	sorted := l.SortedSpans()
	if sorted[0].Name != "undock" || sorted[1].Name != "transit" || sorted[1].Track != "cart-0" {
		t.Errorf("sort order wrong: %+v", sorted)
	}
	tracks := l.Tracks()
	want := []string{"cart-1", "cart-0", "faults"}
	if len(tracks) != len(want) {
		t.Fatalf("tracks = %v, want %v", tracks, want)
	}
	for i := range want {
		if tracks[i] != want[i] {
			t.Errorf("tracks[%d] = %q, want %q", i, tracks[i], want[i])
		}
	}
}

func TestSpanInvertedIntervalClamped(t *testing.T) {
	l := NewSpanLog()
	l.Span("x", "weird", 10, 5)
	s := l.Spans()[0]
	if s.End != s.Start {
		t.Errorf("inverted span not clamped: %+v", s)
	}
}

func TestNilSpanLogIsNoOp(t *testing.T) {
	var l *SpanLog
	l.Span("a", "b", 0, 1)
	l.Mark("a", "c", 2)
	if l.Len() != 0 || l.Spans() != nil || l.Instants() != nil || l.Tracks() != nil {
		t.Error("nil span log must stay empty")
	}
	b, err := ChromeTrace(l)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Error("nil-log trace is not valid JSON")
	}
}

// traceShape mirrors the subset of trace_event JSON the tests inspect.
type traceShape struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceStructure(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-0", "undock", 0, 5)
	l.Span("cart-0", "transit", 5, 25, KV{Key: "degraded", Value: "true"})
	l.Mark("faults", "vacuum-leak", 7, KV{Key: "pressure", Value: "5000Pa"})
	b, err := ChromeTrace(l)
	if err != nil {
		t.Fatal(err)
	}
	var tr traceShape
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("trace is not parseable JSON: %v", err)
	}
	var meta, complete, instant int
	lastTs := math.Inf(-1)
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur < 0 {
				t.Errorf("negative dur on %q", e.Name)
			}
		case "i":
			instant++
		}
		if e.Ph != "M" {
			if e.Ts < lastTs {
				t.Errorf("timestamps not monotone at %q: %v after %v", e.Name, e.Ts, lastTs)
			}
			lastTs = e.Ts
		}
	}
	if meta != 2 || complete != 2 || instant != 1 {
		t.Errorf("event mix = %d meta, %d complete, %d instant; want 2/2/1", meta, complete, instant)
	}
	// Sim seconds → trace microseconds.
	if !strings.Contains(string(b), `"ts": 5e+06`) && !strings.Contains(string(b), `"ts": 5000000`) {
		t.Errorf("expected 5 s span start at 5e6 µs:\n%s", b)
	}
	// Args keep KV order and content.
	if !strings.Contains(string(b), `"pressure": "5000Pa"`) {
		t.Errorf("instant args missing:\n%s", b)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() string {
		l := NewSpanLog()
		l.Span("cart-1", "transit", 3, 9)
		l.Span("cart-0", "transit", 1, 4, KV{Key: "k", Value: "v"})
		l.Mark("faults", "stall", 2)
		b, err := ChromeTrace(l)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := build(), build(); a != b {
		t.Errorf("trace differs between identical logs:\n%s\nvs\n%s", a, b)
	}
}

func TestSpanSummary(t *testing.T) {
	l := NewSpanLog()
	l.Span("cart-0", "transit", 0, 10)
	l.Span("cart-0", "transit", 20, 35)
	l.Mark("faults", "stall", 5)
	out := SpanSummary(l)
	if !strings.Contains(out, "transit") || !strings.Contains(out, "25.000") {
		t.Errorf("span summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "+1 instant") {
		t.Errorf("instants not counted:\n%s", out)
	}
	if SpanSummary(nil) != "" {
		t.Error("nil log summary should be empty")
	}
}
