package telemetry

import (
	"strconv"
	"strings"
)

// Prometheus text-exposition exporter (version 0.0.4 of the format): the
// payload internal/controlplane serves for its metrics verb. Output is
// byte-deterministic: snapshots are already name-sorted, and floats are
// formatted with strconv's shortest round-trip representation.

// promName sanitises a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*; every illegal rune becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a value the way Prometheus clients expect.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PrometheusText renders a snapshot in the Prometheus text exposition
// format: one TYPE line per metric, histograms expanded into cumulative
// _bucket series with the +Inf bucket, plus _sum and _count.
func PrometheusText(s Snapshot) string {
	var b strings.Builder
	for _, c := range s.Counters {
		name := promName(c.Name)
		b.WriteString("# TYPE " + name + " counter\n")
		b.WriteString(name + " " + promFloat(c.Value) + "\n")
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		b.WriteString("# TYPE " + name + " gauge\n")
		b.WriteString(name + " " + promFloat(g.Value) + "\n")
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		b.WriteString("# TYPE " + name + " histogram\n")
		for _, bk := range h.Buckets {
			b.WriteString(name + `_bucket{le="` + promFloat(bk.UpperBound) + `"} ` +
				strconv.FormatUint(bk.Count, 10) + "\n")
		}
		b.WriteString(name + `_bucket{le="+Inf"} ` + strconv.FormatUint(h.Count, 10) + "\n")
		b.WriteString(name + "_sum " + promFloat(h.Sum) + "\n")
		b.WriteString(name + "_count " + strconv.FormatUint(h.Count, 10) + "\n")
	}
	return b.String()
}
