package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dhl_launches_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if r.Counter("dhl_launches_total") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("dhl_carts_in_transit")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dhl_io_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %v, want 556.5", h.Sum())
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hp := s.Histograms[0]
	// Cumulative: ≤1 → {0.5, 1}, ≤10 → +{5}, ≤100 → +{50}; 500 overflows.
	wantCum := []uint64{2, 3, 4}
	for i, b := range hp.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v count = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]float64{nil, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bounds)
				}
			}()
			r.Histogram("bad", bounds)
		}()
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil) // nil registry: bounds never validated
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	var set *Set
	if set.MetricsOf() != nil || set.SpansOf() != nil {
		t.Error("nil set accessors must return nil")
	}
}

func TestSnapshotSortedRegardlessOfRegistrationOrder(t *testing.T) {
	build := func(names []string) string {
		r := NewRegistry()
		for _, n := range names {
			r.Counter(n).Inc()
		}
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a := build([]string{"zeta", "alpha", "mid"})
	b := build([]string{"mid", "zeta", "alpha"})
	if a != b {
		t.Errorf("snapshot depends on registration order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"alpha"`) || strings.Index(a, "alpha") > strings.Index(a, "zeta") {
		t.Errorf("snapshot not name-sorted: %s", a)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("dhl_launches_total").Add(7)
	r.Gauge("dhl-sim time").Set(1.5)
	h := r.Histogram("dhl_io_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)
	text := PrometheusText(r.Snapshot())
	for _, want := range []string{
		"# TYPE dhl_launches_total counter\ndhl_launches_total 7\n",
		"# TYPE dhl_sim_time gauge\ndhl_sim_time 1.5\n", // sanitised name
		`dhl_io_seconds_bucket{le="1"} 1`,
		`dhl_io_seconds_bucket{le="10"} 1`,
		`dhl_io_seconds_bucket{le="+Inf"} 2`,
		"dhl_io_seconds_sum 20.5",
		"dhl_io_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSummaryTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("launches").Add(3)
	r.Histogram("io_s", []float64{1}).Observe(0.25)
	out := SummaryTable(r.Snapshot())
	for _, want := range []string{"counters:", "launches", "histograms:", "io_s"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if SummaryTable(Snapshot{}) != "" {
		t.Error("empty snapshot should render empty summary")
	}
}
