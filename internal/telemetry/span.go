package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// KV is one span annotation. Annotations are ordered slices, not maps, so
// every export path is free of map-iteration order.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed interval on a named track (e.g. a cart's
// transit), in simulated seconds.
type Span struct {
	Track string        `json:"track"`
	Name  string        `json:"name"`
	Start units.Seconds `json:"start_s"`
	End   units.Seconds `json:"end_s"`
	Args  []KV          `json:"args,omitempty"`
}

// Instant is one zero-duration event on a track (fault strikes, retries,
// reroutes).
type Instant struct {
	Track string        `json:"track"`
	Name  string        `json:"name"`
	At    units.Seconds `json:"at_s"`
	Args  []KV          `json:"args,omitempty"`
}

// StrID is an interned track or span name — an index into the log's
// string table. The hot record path (RecordSpan/RecordInstant) takes
// StrIDs so a record is a pointer-free fixed-size append; instrumented
// subsystems intern their fixed name sets once at construction.
type StrID uint16

// spanRec is the in-memory form of one span: 32 pointer-free bytes, so
// the record slab is exempt from GC scanning and appends carry no write
// barriers. Strings and args are materialised on export.
type spanRec struct {
	start, end  float64
	argStart    uint32
	track, name StrID
	argLen      uint16
}

// instRec is the in-memory form of one instant.
type instRec struct {
	at          float64
	argStart    uint32
	track, name StrID
	argLen      uint16
}

// SpanLog accumulates spans and instants in recording order. Spans are
// recorded at completion, so recording order follows simulation time of
// the span *ends*; exporters re-sort by start time where their format
// requires it. All methods are no-ops on a nil receiver, making a
// disabled trace cost one nil check per site.
//
// Like Registry, a SpanLog belongs to one single-threaded simulation.
type SpanLog struct {
	recs     []spanRec
	instRecs []instRec

	// strs is the intern table StrIDs index. Intern appends without
	// dedup (hot callers intern each constant exactly once, at
	// construction); the string-keyed compat path dedups through strIDs,
	// built lazily so ID-only logs never pay for the map.
	strs   []string
	strIDs map[string]StrID

	// argLog is the flat backing store for span/instant annotations.
	// Records hold (start, len) indices rather than slices, so growing
	// the store never invalidates a record, and the `args ...KV`
	// parameter at every record site stays on the caller's stack (it
	// provably does not escape).
	argLog []KV
}

// Initial capacities, allocated lazily on first record so an idle log
// costs nothing. A live trace records hundreds of spans; starting at a
// real capacity avoids the doubling copies that would otherwise dominate
// the record path.
const (
	spanLogInitialSpans    = 160
	spanLogInitialInstants = 16
	argSlabChunk           = 96 // initial KV capacity of the arg store
)

// NewSpanLog returns an empty log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Reset empties the log for reuse, keeping the record, string-table, and
// arg-store backing arrays — after a warm-up run, a recycled log records
// with no allocations at all. Interned StrIDs from before the Reset are
// invalidated (the string table empties); re-intern after each Reset.
// Safe on a nil receiver.
//
//dhllint:hotpath
func (l *SpanLog) Reset() {
	if l == nil {
		return
	}
	l.recs = l.recs[:0]
	l.instRecs = l.instRecs[:0]
	l.strs = l.strs[:0]
	clear(l.strIDs)
	l.argLog = l.argLog[:0]
}

// Intern adds s to the log's string table and returns its ID. It does not
// deduplicate: callers intern each fixed name once (typically at system
// construction) and pass the IDs to RecordSpan/RecordInstant. Returns 0
// on a nil receiver (harmless: every record path on nil is a no-op).
//
//dhllint:hotpath
func (l *SpanLog) Intern(s string) StrID {
	if l == nil {
		return 0
	}
	if len(l.strs) >= 1<<16 {
		//dhllint:allow allocflow -- 64Ki-interns overflow is unreachable in a real run; dying loudly beats wrapping
		panic(fmt.Sprintf("telemetry: span log string table overflow interning %q", s))
	}
	if l.strs == nil {
		//dhllint:allow allocflow -- lazy first-use growth; steady state appends within capacity
		l.strs = make([]string, 0, 32)
	}
	l.strs = append(l.strs, s)
	return StrID(len(l.strs) - 1)
}

// Grow reserves capacity for at least spans more span records, instants
// more instant records, and args more annotation KVs beyond the current
// lengths. A caller that knows its recording volume can pre-size the log
// and keep every subsequent record within capacity — the complement of
// Reset for pinning the zero-allocation record path without recycling.
// Safe on a nil receiver.
func (l *SpanLog) Grow(spans, instants, args int) {
	if l == nil {
		return
	}
	l.recs = growCap(l.recs, spans)
	l.instRecs = growCap(l.instRecs, instants)
	l.argLog = growCap(l.argLog, args)
}

// growCap ensures s has capacity for at least n more elements.
func growCap[T any](s []T, n int) []T {
	if n <= cap(s)-len(s) {
		return s
	}
	out := make([]T, len(s), len(s)+n)
	copy(out, s)
	return out
}

// internDedup is the string-compat path's lookup: one table entry per
// distinct string, building the reverse index lazily.
func (l *SpanLog) internDedup(s string) StrID {
	if id, ok := l.strIDs[s]; ok {
		return id
	}
	id := l.Intern(s)
	if l.strIDs == nil {
		l.strIDs = make(map[string]StrID, 16)
	}
	l.strIDs[s] = id
	return id
}

// saveArgs copies args into the arg store and returns their (start, len)
// window. Indices stay valid across store growth, unlike slices.
//
//dhllint:hotpath
func (l *SpanLog) saveArgs(args []KV) (uint32, uint16) {
	if len(args) == 0 {
		return 0, 0
	}
	if l.argLog == nil {
		//dhllint:allow allocflow -- lazy first-use growth; steady state appends within capacity
		l.argLog = make([]KV, 0, argSlabChunk)
	}
	start := len(l.argLog)
	l.argLog = append(l.argLog, args...)
	return uint32(start), uint16(len(args))
}

// RecordSpan records a completed interval on interned track/name IDs —
// the allocation-flat hot path. Inverted intervals (end < start) are
// clamped to zero duration at start. The args slice is copied, never
// retained.
//
//dhllint:hotpath
func (l *SpanLog) RecordSpan(track, name StrID, start, end units.Seconds, args ...KV) {
	if l == nil {
		return
	}
	if end < start {
		end = start
	}
	if l.recs == nil {
		//dhllint:allow allocflow -- lazy first-use growth; steady state appends within capacity
		l.recs = make([]spanRec, 0, spanLogInitialSpans)
	}
	var as uint32
	var an uint16
	if len(args) > 0 { // most spans carry no annotations; skip the store
		as, an = l.saveArgs(args)
	}
	l.recs = append(l.recs, spanRec{
		start: float64(start), end: float64(end),
		track: track, name: name, argStart: as, argLen: an,
	})
}

// RecordInstant records a zero-duration event on interned IDs.
//
//dhllint:hotpath
func (l *SpanLog) RecordInstant(track, name StrID, at units.Seconds, args ...KV) {
	if l == nil {
		return
	}
	if l.instRecs == nil {
		//dhllint:allow allocflow -- lazy first-use growth; steady state appends within capacity
		l.instRecs = make([]instRec, 0, spanLogInitialInstants)
	}
	var as uint32
	var an uint16
	if len(args) > 0 {
		as, an = l.saveArgs(args)
	}
	l.instRecs = append(l.instRecs, instRec{
		at: float64(at), track: track, name: name, argStart: as, argLen: an,
	})
}

// Span records a completed interval by name — the string-keyed
// compatibility path, which interns through a dedup map. Hot paths should
// intern once and use RecordSpan. The args slice is copied, never
// retained.
func (l *SpanLog) Span(track, name string, start, end units.Seconds, args ...KV) {
	if l == nil {
		return
	}
	l.RecordSpan(l.internDedup(track), l.internDedup(name), start, end, args...)
}

// Mark records an instant event by name. The args slice is copied, never
// retained.
func (l *SpanLog) Mark(track, name string, at units.Seconds, args ...KV) {
	if l == nil {
		return
	}
	l.RecordInstant(l.internDedup(track), l.internDedup(name), at, args...)
}

// argsAt returns the annotation window as a capacity-capped view.
func (l *SpanLog) argsAt(start uint32, n uint16) []KV {
	if n == 0 {
		return nil
	}
	end := start + uint32(n)
	return l.argLog[start:end:end]
}

// spanAt materialises record i.
func (l *SpanLog) spanAt(i int) Span {
	r := &l.recs[i]
	return Span{
		Track: l.strs[r.track], Name: l.strs[r.name],
		Start: units.Seconds(r.start), End: units.Seconds(r.end),
		Args: l.argsAt(r.argStart, r.argLen),
	}
}

// instantAt materialises instant record i.
func (l *SpanLog) instantAt(i int) Instant {
	r := &l.instRecs[i]
	return Instant{
		Track: l.strs[r.track], Name: l.strs[r.name],
		At:   units.Seconds(r.at),
		Args: l.argsAt(r.argStart, r.argLen),
	}
}

// Len returns the number of recorded spans plus instants (0 on nil).
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.recs) + len(l.instRecs)
}

// NumSpans returns the number of recorded spans (0 on nil).
func (l *SpanLog) NumSpans() int {
	if l == nil {
		return 0
	}
	return len(l.recs)
}

// NumInstants returns the number of recorded instants (0 on nil).
func (l *SpanLog) NumInstants() int {
	if l == nil {
		return 0
	}
	return len(l.instRecs)
}

// EachSpan calls fn for every recorded span in recording order without
// copying the log. fn must not record into the log.
func (l *SpanLog) EachSpan(fn func(Span)) {
	if l == nil {
		return
	}
	for i := range l.recs {
		fn(l.spanAt(i))
	}
}

// EachInstant calls fn for every recorded instant in recording order
// without copying the log. fn must not record into the log.
func (l *SpanLog) EachInstant(fn func(Instant)) {
	if l == nil {
		return
	}
	for i := range l.instRecs {
		fn(l.instantAt(i))
	}
}

// Spans returns a copy of the recorded spans in recording order. Exporters
// that only walk the log should prefer EachSpan, which materialises
// in place.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	out := make([]Span, len(l.recs))
	for i := range l.recs {
		out[i] = l.spanAt(i)
	}
	return out
}

// Instants returns a copy of the recorded instants in recording order.
// Exporters that only walk the log should prefer EachInstant.
func (l *SpanLog) Instants() []Instant {
	if l == nil {
		return nil
	}
	out := make([]Instant, len(l.instRecs))
	for i := range l.instRecs {
		out[i] = l.instantAt(i)
	}
	return out
}

// Tracks returns every track name appearing in the log, first-appearance
// ordered (spans scanned before instants). The ordering is deterministic
// because recording order is.
func (l *SpanLog) Tracks() []string {
	if l == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for i := range l.recs {
		t := l.strs[l.recs[i].track]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for i := range l.instRecs {
		t := l.strs[l.instRecs[i].track]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// SortedSpans returns the spans ordered by (Start, End, recording order) —
// the order the Chrome exporter and summary table use.
func (l *SpanLog) SortedSpans() []Span {
	out := l.Spans()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start < out[j].Start {
			return true
		}
		if out[j].Start < out[i].Start {
			return false
		}
		return out[i].End < out[j].End
	})
	return out
}
