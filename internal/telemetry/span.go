package telemetry

import (
	"sort"

	"repro/internal/units"
)

// KV is one span annotation. Annotations are ordered slices, not maps, so
// every export path is free of map-iteration order.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed interval on a named track (e.g. a cart's
// transit), in simulated seconds.
type Span struct {
	Track string        `json:"track"`
	Name  string        `json:"name"`
	Start units.Seconds `json:"start_s"`
	End   units.Seconds `json:"end_s"`
	Args  []KV          `json:"args,omitempty"`
}

// Instant is one zero-duration event on a track (fault strikes, retries,
// reroutes).
type Instant struct {
	Track string        `json:"track"`
	Name  string        `json:"name"`
	At    units.Seconds `json:"at_s"`
	Args  []KV          `json:"args,omitempty"`
}

// SpanLog accumulates spans and instants in recording order. Spans are
// recorded at completion, so recording order follows simulation time of
// the span *ends*; exporters re-sort by start time where their format
// requires it. All methods are no-ops on a nil receiver, making a
// disabled trace cost one nil check per site.
//
// Like Registry, a SpanLog belongs to one single-threaded simulation.
type SpanLog struct {
	spans    []Span
	instants []Instant
}

// NewSpanLog returns an empty log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Span records a completed interval. Inverted intervals (end < start) are
// clamped to zero duration at start.
func (l *SpanLog) Span(track, name string, start, end units.Seconds, args ...KV) {
	if l == nil {
		return
	}
	if end < start {
		end = start
	}
	l.spans = append(l.spans, Span{Track: track, Name: name, Start: start, End: end, Args: args})
}

// Mark records an instant event.
func (l *SpanLog) Mark(track, name string, at units.Seconds, args ...KV) {
	if l == nil {
		return
	}
	l.instants = append(l.instants, Instant{Track: track, Name: name, At: at, Args: args})
}

// Len returns the number of recorded spans plus instants (0 on nil).
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.spans) + len(l.instants)
}

// Spans returns a copy of the recorded spans in recording order.
func (l *SpanLog) Spans() []Span {
	if l == nil {
		return nil
	}
	return append([]Span(nil), l.spans...)
}

// Instants returns a copy of the recorded instants in recording order.
func (l *SpanLog) Instants() []Instant {
	if l == nil {
		return nil
	}
	return append([]Instant(nil), l.instants...)
}

// Tracks returns every track name appearing in the log, first-appearance
// ordered (spans scanned before instants). The ordering is deterministic
// because recording order is.
func (l *SpanLog) Tracks() []string {
	if l == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, s := range l.spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			out = append(out, s.Track)
		}
	}
	for _, i := range l.instants {
		if !seen[i.Track] {
			seen[i.Track] = true
			out = append(out, i.Track)
		}
	}
	return out
}

// SortedSpans returns the spans ordered by (Start, End, recording order) —
// the order the Chrome exporter and summary table use.
func (l *SpanLog) SortedSpans() []Span {
	out := l.Spans()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start < out[j].Start {
			return true
		}
		if out[j].Start < out[i].Start {
			return false
		}
		return out[i].End < out[j].End
	})
	return out
}
