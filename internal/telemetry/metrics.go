package telemetry

import (
	"fmt"
	"sort"
)

// Counter is a monotonically non-decreasing metric. The zero value is
// ready; all methods are no-ops on a nil receiver.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta; negative deltas are ignored
// (counters are monotone by contract).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	c.v += delta
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a metric that can go up and down. The zero value is ready; all
// methods are no-ops on a nil receiver.
type Gauge struct {
	v float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add adjusts the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v += delta
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the
// overflow (its cumulative count equals Count). The zero value is unusable
// — obtain histograms from a Registry, which fixes the bucket layout at
// creation. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry owns a flat namespace of metrics. Handles are created on first
// use and live for the registry's lifetime; snapshots list metrics in
// sorted name order, so serialisations are byte-deterministic regardless
// of registration order. A nil *Registry hands out nil handles, making
// the whole instrumentation path a no-op.
//
// The registry is not safe for concurrent use — it belongs to a
// single-threaded simulation, matching the rest of the model stack.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Insertion-ordered name lists: snapshots sort copies of these rather
	// than ranging the maps, keeping every output path order-stable.
	counterNames []string
	gaugeNames   []string
	histNames    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.counterNames = append(r.counterNames, name)
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.gaugeNames = append(r.gaugeNames, name)
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Bounds must be ascending and
// non-empty; a later call with different bounds panics (one layout per
// name, fixed for the run). Returns nil (a no-op handle) on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending at index %d", name, i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	r.histNames = append(r.histNames, name)
	return h
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketPoint is one cumulative histogram bucket: the count of
// observations ≤ UpperBound. The implicit +Inf bucket is not listed — its
// cumulative count is the histogram's Count.
type BucketPoint struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramPoint is one histogram in a snapshot.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Buckets []BucketPoint `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   uint64        `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, with every section in
// sorted name order. Marshalling a snapshot (JSON or any exporter in this
// package) is byte-deterministic for a given simulation history.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields
// the zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	for _, name := range sortedCopy(r.counterNames) {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: r.counters[name].v})
	}
	for _, name := range sortedCopy(r.gaugeNames) {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: r.gauges[name].v})
	}
	for _, name := range sortedCopy(r.histNames) {
		h := r.hists[name]
		hp := HistogramPoint{Name: name, Sum: h.sum, Count: h.count}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			hp.Buckets = append(hp.Buckets, BucketPoint{UpperBound: b, Count: cum})
		}
		s.Histograms = append(s.Histograms, hp)
	}
	return s
}

// sortedCopy returns names sorted without disturbing the original
// insertion-ordered slice.
func sortedCopy(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
