package telemetry

import (
	"fmt"
	"sort"
)

// Counter is a monotonically non-decreasing metric. The zero value is
// ready; all methods are no-ops on a nil receiver.
type Counter struct {
	v float64
}

// Inc adds one.
//
//dhllint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta; negative deltas are ignored
// (counters are monotone by contract).
//
//dhllint:hotpath
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	c.v += delta
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a metric that can go up and down. The zero value is ready; all
// methods are no-ops on a nil receiver.
type Gauge struct {
	v float64
}

// Set stores v.
//
//dhllint:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add adjusts the gauge by delta (either sign).
//
//dhllint:hotpath
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v += delta
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the
// overflow (its cumulative count equals Count). The zero value is unusable
// — obtain histograms from a Registry, which fixes the bucket layout at
// creation. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	count  uint64
}

// Observe records one value. The bucket walk is a branch-predictable
// linear scan — bucket layouts here are ≤ a dozen bounds, where the scan
// beats binary search and the record path stays free of calls, locks,
// and allocations.
//
//dhllint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && h.bounds[i] < v {
		i++ // settles at the first bound ≥ v, or the +Inf overflow
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry owns a flat namespace of metrics. Handles are created on first
// use and live for the registry's lifetime; snapshots list metrics in
// sorted name order, so serialisations are byte-deterministic regardless
// of registration order. A nil *Registry hands out nil handles, making
// the whole instrumentation path a no-op.
//
// Each section is a pair of parallel slices kept sorted by name plus a
// handle map. The sorted slices make snapshots order-deterministic with
// no per-snapshot sort and no map iteration; the map makes repeat
// registrations — every run against a pooled registry re-requests the
// same ~30 names — a single lookup.
//
// The registry is not safe for concurrent use — it belongs to a
// single-threaded simulation, matching the rest of the model stack.
type Registry struct {
	counterNames []string
	counterVals  []*Counter
	gaugeNames   []string
	gaugeVals    []*Gauge
	histNames    []string
	histVals     []*Histogram

	// Hit-path indexes: repeat registrations (every run against a pooled
	// registry re-requests the same ~30 names) resolve with one map
	// lookup instead of a binary search over the shared "dhl_" prefixes.
	// The maps hold handles, not positions, so the sorted-insert shifts
	// below never invalidate them.
	counterIdx map[string]*Counter
	gaugeIdx   map[string]*Gauge
	histIdx    map[string]*Histogram

	// Chunked backing store for counter handles: registration costs one
	// allocation per chunk, not per metric. Handles point into a chunk,
	// which stays alive through them; the chunk slice only ever appends
	// within capacity before being replaced, so the pointers are stable.
	counterSlab []Counter
}

// registryHint sizes the name lists and handle slab for a typical
// instrumented simulation (the full system registers ~30 counters).
const registryHint = 32

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counterNames: make([]string, 0, registryHint),
		counterVals:  make([]*Counter, 0, registryHint),
		counterIdx:   make(map[string]*Counter, registryHint),
	}
}

// Reset zeroes every metric while keeping the namespace and the handles —
// the pooling path for drivers that run many simulations against one
// long-lived registry. Handles obtained before the Reset stay valid (the
// next run's Counter/Gauge/Histogram calls return the same ones) and read
// as freshly created. Safe on a nil receiver.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, c := range r.counterVals {
		c.v = 0
	}
	for _, g := range r.gaugeVals {
		g.v = 0
	}
	for _, h := range r.histVals {
		clear(h.counts)
		h.sum = 0
		h.count = 0
	}
}

// findName locates name in the sorted list, returning its index and
// whether it is present (the index is the insertion point when absent).
func findName(names []string, name string) (int, bool) {
	i := sort.SearchStrings(names, name)
	return i, i < len(names) && names[i] == name
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
//
//dhllint:hotpath
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counterIdx[name]; ok {
		return c
	}
	i, _ := findName(r.counterNames, name)
	if len(r.counterSlab) == cap(r.counterSlab) {
		//dhllint:allow allocflow -- miss path: registration allocates once per chunk, hits are map lookups
		r.counterSlab = make([]Counter, 0, registryHint)
	}
	r.counterSlab = append(r.counterSlab, Counter{})
	c := &r.counterSlab[len(r.counterSlab)-1]
	r.counterNames = insertAt(r.counterNames, i, name)
	r.counterVals = insertAt(r.counterVals, i, c)
	//dhllint:allow allocflow -- miss path: one index insert per new name, hits never reach here
	r.counterIdx[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil (a
// no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gaugeIdx[name]; ok {
		return g
	}
	i, _ := findName(r.gaugeNames, name)
	g := &Gauge{}
	r.gaugeNames = insertAt(r.gaugeNames, i, name)
	r.gaugeVals = insertAt(r.gaugeVals, i, g)
	if r.gaugeIdx == nil {
		r.gaugeIdx = make(map[string]*Gauge, 8)
	}
	r.gaugeIdx[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Bounds must be ascending and
// non-empty; a later call with different bounds panics (one layout per
// name, fixed for the run). Returns nil (a no-op handle) on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histIdx[name]; ok {
		return h
	}
	i, _ := findName(r.histNames, name)
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for j := 1; j < len(bounds); j++ {
		if bounds[j] <= bounds[j-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending at index %d", name, j))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histNames = insertAt(r.histNames, i, name)
	r.histVals = insertAt(r.histVals, i, h)
	if r.histIdx == nil {
		r.histIdx = make(map[string]*Histogram, 8)
	}
	r.histIdx[name] = h
	return h
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketPoint is one cumulative histogram bucket: the count of
// observations ≤ UpperBound. The implicit +Inf bucket is not listed — its
// cumulative count is the histogram's Count.
type BucketPoint struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramPoint is one histogram in a snapshot.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Buckets []BucketPoint `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   uint64        `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, with every section in
// sorted name order. Marshalling a snapshot (JSON or any exporter in this
// package) is byte-deterministic for a given simulation history.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields
// the zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	if n := len(r.counterNames); n > 0 {
		s.Counters = make([]CounterPoint, n)
		for i, name := range r.counterNames {
			s.Counters[i] = CounterPoint{Name: name, Value: r.counterVals[i].v}
		}
	}
	if n := len(r.gaugeNames); n > 0 {
		s.Gauges = make([]GaugePoint, n)
		for i, name := range r.gaugeNames {
			s.Gauges[i] = GaugePoint{Name: name, Value: r.gaugeVals[i].v}
		}
	}
	if n := len(r.histNames); n > 0 {
		s.Histograms = make([]HistogramPoint, n)
		for i, name := range r.histNames {
			h := r.histVals[i]
			hp := HistogramPoint{Name: name, Sum: h.sum, Count: h.count,
				Buckets: make([]BucketPoint, 0, len(h.bounds))}
			cum := uint64(0)
			for j, b := range h.bounds {
				cum += h.counts[j]
				hp.Buckets = append(hp.Buckets, BucketPoint{UpperBound: b, Count: cum})
			}
			s.Histograms[i] = hp
		}
	}
	return s
}

// insertAt inserts v at index i, shifting the tail up. The registry's
// lists are tiny and preallocated, so the shift is a short memmove.
func insertAt[T any](s []T, i int, v T) []T {
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
