// Package cost implements the paper's materials cost model (§V-D,
// Table VIII): commodity prices for the rail (aluminium levitation rings,
// PVC rail and vacuum tube) and for the LIM accelerator/decelerator (copper
// coils and a variable-frequency drive).
//
// Construction cost is deliberately excluded, as in the paper ("highly
// variable and application-specific").
package cost

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Commodity prices, USD/kg, taken May 2023 (Table VIII).
const (
	AluminiumPerKg units.USDPerKg = 2.35
	PVCPerKg       units.USDPerKg = 1.20
	CopperPerKg    units.USDPerKg = 8.58
)

// Rail material intensities, derived from Table VIII(a): each column of the
// table divides back to a fixed mass per metre.
const (
	// RingMass is one aluminium levitation ring (§V-D: "around 3.62 grams").
	RingMass units.Grams = 3.62
	// AluminiumPerMetre: $117 per 100 m at $2.35/kg → 497.9 g/m.
	AluminiumPerMetre units.GramsPerMetre = 497.87
	// PVCRailPerMetre: $116 per 100 m at $1.20/kg → 966.7 g/m.
	PVCRailPerMetre units.GramsPerMetre = 966.67
	// PVCTubePerMetre: $500 per 100 m at $1.20/kg → 4.167 kg/m.
	PVCTubePerMetre units.GramsPerMetre = 4166.7
	// VFDCost is the variable frequency drive, flat.
	VFDCost units.USD = 8000
)

// RingsPerMetre is the aluminium ring pitch implied by the mass intensity.
func RingsPerMetre() float64 { return float64(AluminiumPerMetre) / float64(RingMass) }

// copperMassKg maps LIM top speed (m/s) to coil copper mass (kg), inverted
// from Table VIII(b): $792/$2,904/$6,512 at $8.58/kg.
var copperMassKg = []struct{ speed, kg float64 }{
	{100, 792.0 / 8.58},
	{200, 2904.0 / 8.58},
	{300, 6512.0 / 8.58},
}

// CopperMass returns the LIM coil copper mass for a top speed, exact at the
// paper's 100/200/300 m/s grid and linearly interpolated/extrapolated
// elsewhere (coil mass grows close to v², i.e. with LIM length).
func CopperMass(speed units.MetresPerSecond) units.Grams {
	v := float64(speed)
	pts := copperMassKg
	i := sort.Search(len(pts), func(i int) bool { return pts[i].speed >= v })
	switch {
	case i == 0:
		i = 1
	case i == len(pts):
		i = len(pts) - 1
	}
	a, b := pts[i-1], pts[i]
	kg := a.kg + (b.kg-a.kg)*(v-a.speed)/(b.speed-a.speed)
	return units.Grams(math.Max(kg, 0) * 1000)
}

// RailCost is the Table VIII(a) decomposition for a track of the given
// length.
type RailCost struct {
	Length    units.Metres
	Aluminium units.USD
	PVCRail   units.USD
	PVCTube   units.USD
}

// Rail computes the rail materials cost.
func Rail(length units.Metres) RailCost {
	return RailCost{
		Length:    length,
		Aluminium: AluminiumPerKg.Cost(AluminiumPerMetre.Mass(length)),
		PVCRail:   PVCPerKg.Cost(PVCRailPerMetre.Mass(length)),
		PVCTube:   PVCPerKg.Cost(PVCTubePerMetre.Mass(length)),
	}
}

// Total sums the rail components.
func (r RailCost) Total() units.USD { return r.Aluminium + r.PVCRail + r.PVCTube }

// RingCount is the number of levitation rings along the rail.
func (r RailCost) RingCount() int {
	return int(math.Round(float64(r.Length) * RingsPerMetre()))
}

// LIMCost is the Table VIII(b) decomposition for one accelerator/decelerator
// assembly sized for a top speed.
type LIMCost struct {
	TopSpeed units.MetresPerSecond
	Copper   units.USD
	VFD      units.USD
}

// LIM computes the accelerator/decelerator materials cost.
func LIM(topSpeed units.MetresPerSecond) LIMCost {
	return LIMCost{
		TopSpeed: topSpeed,
		Copper:   CopperPerKg.Cost(CopperMass(topSpeed)),
		VFD:      VFDCost,
	}
}

// Total sums the LIM components.
func (l LIMCost) Total() units.USD { return l.Copper + l.VFD }

// Overall is the Table VIII(c) total: rail for the distance plus the LIM
// assembly for the speed.
func Overall(length units.Metres, topSpeed units.MetresPerSecond) units.USD {
	return Rail(length).Total() + LIM(topSpeed).Total()
}

// Grid evaluates Overall over the paper's distance × speed grid and returns
// rows in Table VIII(c) order (distance-major).
type GridCell struct {
	Length units.Metres
	Speed  units.MetresPerSecond
	Total  units.USD
}

// PaperGrid returns the 3×3 Table VIII(c) grid.
func PaperGrid() []GridCell {
	lengths := []units.Metres{100, 500, 1000}
	speeds := []units.MetresPerSecond{100, 200, 300}
	var out []GridCell
	for _, l := range lengths {
		for _, v := range speeds {
			out = append(out, GridCell{Length: l, Speed: v, Total: Overall(l, v)})
		}
	}
	return out
}

// String renders a grid cell.
func (g GridCell) String() string {
	return fmt.Sprintf("%gm/%gm/s: %v", float64(g.Length), float64(g.Speed), g.Total)
}

// ComparableSwitchCost is the paper's yardstick: "DHL costs roughly twenty
// thousand dollars, which is a typical price for a large 400gbps switch".
const ComparableSwitchCost units.USD = 20000
