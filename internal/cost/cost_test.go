package cost

import (
	"math"
	"testing"

	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestReproTableVIIIaRail(t *testing.T) {
	// Table VIII(a): component costs at 100/500/1000 m.
	cases := []struct {
		length               float64
		alu, rail, tube, tot float64
	}{
		{100, 117, 116, 500, 733},
		{500, 585, 580, 2500, 3665},
		{1000, 1170, 1160, 5000, 7330},
	}
	for _, c := range cases {
		r := Rail(units.Metres(c.length))
		approx(t, "aluminium", float64(r.Aluminium), c.alu, 0.005)
		approx(t, "pvc rail", float64(r.PVCRail), c.rail, 0.005)
		approx(t, "pvc tube", float64(r.PVCTube), c.tube, 0.005)
		approx(t, "rail total", float64(r.Total()), c.tot, 0.005)
	}
}

func TestReproTableVIIIbLIM(t *testing.T) {
	// Table VIII(b): copper + VFD at 100/200/300 m/s.
	cases := []struct {
		speed            float64
		copper, vfd, tot float64
	}{
		{100, 792, 8000, 8792},
		{200, 2904, 8000, 10904},
		{300, 6512, 8000, 14512},
	}
	for _, c := range cases {
		l := LIM(units.MetresPerSecond(c.speed))
		approx(t, "copper", float64(l.Copper), c.copper, 0.005)
		approx(t, "vfd", float64(l.VFD), c.vfd, 1e-12)
		approx(t, "lim total", float64(l.Total()), c.tot, 0.005)
	}
}

func TestReproTableVIIIcOverall(t *testing.T) {
	// Table VIII(c): the 3×3 grid.
	want := map[[2]float64]float64{
		{100, 100}: 9525, {100, 200}: 11637, {100, 300}: 15245,
		{500, 100}: 12457, {500, 200}: 14569, {500, 300}: 18177,
		{1000, 100}: 16122, {1000, 200}: 18234, {1000, 300}: 21842,
	}
	for k, w := range want {
		got := Overall(units.Metres(k[0]), units.MetresPerSecond(k[1]))
		approx(t, "overall", float64(got), w, 0.005)
	}
	grid := PaperGrid()
	if len(grid) != 9 {
		t.Fatalf("grid size = %d, want 9", len(grid))
	}
	for _, g := range grid {
		w := want[[2]float64{float64(g.Length), float64(g.Speed)}]
		approx(t, g.String(), float64(g.Total), w, 0.005)
	}
}

func TestCostComparableToSwitch(t *testing.T) {
	// §V-D: "DHL costs roughly twenty thousand dollars, which is a typical
	// price for a large 400gbps switch" — the most expensive configuration
	// stays close to that yardstick.
	max := Overall(1000, 300)
	if max > 1.1*ComparableSwitchCost+2000 {
		t.Errorf("max cost %v should be ≈ a $20k switch", max)
	}
	if max < ComparableSwitchCost {
		t.Errorf("max cost %v should exceed the $20k yardstick slightly", max)
	}
}

func TestRingGeometry(t *testing.T) {
	// ~137.5 rings/m, 3.62 g each.
	approx(t, "rings per metre", RingsPerMetre(), 137.5, 0.01)
	r := Rail(500)
	if n := r.RingCount(); n < 68000 || n > 69500 {
		t.Errorf("ring count over 500 m = %d, want ≈68 770", n)
	}
}

func TestCopperMassInterpolation(t *testing.T) {
	// Exact at grid points.
	approx(t, "copper@200", CopperMass(200).Kg(), 2904.0/8.58, 1e-9)
	// Monotone between and beyond grid points.
	prev := units.Grams(0)
	for _, v := range []float64{50, 100, 150, 200, 250, 300, 350} {
		m := CopperMass(units.MetresPerSecond(v))
		if m < prev {
			t.Errorf("copper mass not monotone at %v m/s: %v < %v", v, m, prev)
		}
		prev = m
	}
	// Extrapolation below the grid is clamped at ≥0.
	if CopperMass(0) < 0 {
		t.Error("copper mass must never be negative")
	}
}

func TestCostMonotonicity(t *testing.T) {
	// Longer tracks and faster LIMs must cost more.
	if Overall(500, 200) <= Overall(100, 200) {
		t.Error("cost must grow with distance")
	}
	if Overall(500, 300) <= Overall(500, 100) {
		t.Error("cost must grow with speed")
	}
}
