// Package faults is the deterministic, seed-driven fault-injection engine
// for the DHL system simulation. §III-D argues DHLs are viable because
// failures can be ameliorated cheaply — "if an SSD fails in-flight ... RAID
// and backups can ameliorate the issue", the library "offers an easy
// solution to remove the carts for repair" — but that claim is only
// testable if the simulation can *produce* those failures on demand, across
// every physical layer, and reproduce them byte-identically from a seed.
//
// The package defines a fault taxonomy (SSD death, cart stall/derail,
// vacuum leak, docking-station failure, LIM power loss), fault scripts
// (explicit schedules or named scenarios generated from a seeded
// *rand.Rand), and an Injector that arms a script on the shared
// discrete-event kernel (internal/sim) and applies each fault to a Target
// at its scheduled time. All randomness is confined to script *generation*
// with an explicit seed; injection itself is pure replay, so the same
// script produces the same event log on every run — the determinism
// contract the repository's dhllint toolchain enforces statically.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/track"
	"repro/internal/units"
)

// Kind classifies a fault by the physical layer it strikes.
type Kind int

const (
	// SSDFailure kills one SSD on a cart (§III-D in-flight failure).
	SSDFailure Kind = iota
	// CartStall stalls a cart (or drops debris) on a rail direction,
	// blocking the track segment until cleared.
	CartStall
	// VacuumLeak raises the tube pressure, forcing degraded-speed launches
	// until the leak is sealed (§IV-B vacuum maintenance).
	VacuumLeak
	// DockFailure takes one endpoint docking station out of service
	// (connector damage, §VI connector longevity).
	DockFailure
	// LIMPowerLoss de-energises the LIM serving one launch direction; no
	// launches that way until power returns.
	LIMPowerLoss
	// JunctionFailure takes one campus station/junction out of service: no
	// departures from it and the router excludes it until repair. Carts
	// already inbound may still arrive (the tube physically ends there).
	JunctionFailure
	// TubeSegmentFailure kills one directed tube segment of a campus
	// network (LIM de-energised or tube breached): no new entries, and
	// carts mid-segment coast to a protected stop until the repair clears
	// them through.
	TubeSegmentFailure

	numKinds
)

// NumKinds is the number of fault kinds in the taxonomy.
const NumKinds = int(numKinds)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SSDFailure:
		return "ssd-failure"
	case CartStall:
		return "cart-stall"
	case VacuumLeak:
		return "vacuum-leak"
	case DockFailure:
		return "dock-failure"
	case LIMPowerLoss:
		return "lim-power-loss"
	case JunctionFailure:
		return "junction-failure"
	case TubeSegmentFailure:
		return "tube-segment-failure"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns every fault kind in taxonomy order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Fault is one scheduled fault. Which target fields are meaningful depends
// on Kind; Validate enforces the pairing.
type Fault struct {
	Kind Kind
	// At is the injection time on the simulation clock.
	At units.Seconds
	// Duration is the outage window; repair fires at At+Duration. Zero
	// means the fault is instantaneous (SSDFailure: the device stays dead
	// until serviced at the library, no separate repair event).
	Duration units.Seconds
	// Cart targets SSDFailure and cart-bound CartStall faults. For
	// CartStall, track.NoCart means debris on the segment rather than a
	// specific stalled cart.
	Cart track.CartID
	// Device is the SSD index within the cart's array (SSDFailure).
	Device int
	// Station is the endpoint docking-station index (DockFailure) or the
	// campus station/junction index (JunctionFailure).
	Station int
	// Segment is the campus tube-segment index (TubeSegmentFailure).
	Segment int
	// Direction is the rail direction (CartStall, LIMPowerLoss).
	Direction track.Direction
	// Pressure is the tube pressure while a VacuumLeak is open, in
	// pascals.
	Pressure float64
}

// Errors returned by fault and script validation.
var (
	ErrBadFault  = errors.New("faults: invalid fault")
	ErrBadScript = errors.New("faults: invalid script")
)

// Dims describes a deployment's dimensions for fault validation and
// scenario generation. Segments is the number of directed tube segments in
// a campus topology; zero means a point-to-point deployment, where
// campus-only faults (JunctionFailure, TubeSegmentFailure) are invalid.
type Dims struct {
	Carts          int
	Stations       int
	DevicesPerCart int
	Segments       int
}

// Validate checks the fault against a point-to-point deployment's
// dimensions. Campus faults need ValidateDims with Segments set.
func (f Fault) Validate(numCarts, numStations, devicesPerCart int) error {
	return f.ValidateDims(Dims{Carts: numCarts, Stations: numStations, DevicesPerCart: devicesPerCart})
}

// ValidateDims checks the fault against a deployment's dimensions.
func (f Fault) ValidateDims(d Dims) error {
	numCarts, numStations, devicesPerCart := d.Carts, d.Stations, d.DevicesPerCart
	if f.At < 0 {
		return fmt.Errorf("%w: negative injection time %v", ErrBadFault, f.At)
	}
	if f.Duration < 0 {
		return fmt.Errorf("%w: negative duration %v", ErrBadFault, f.Duration)
	}
	switch f.Kind {
	case SSDFailure:
		if f.Cart < 0 || int(f.Cart) >= numCarts {
			return fmt.Errorf("%w: ssd-failure cart %d outside fleet of %d", ErrBadFault, f.Cart, numCarts)
		}
		if f.Device < 0 || f.Device >= devicesPerCart {
			return fmt.Errorf("%w: ssd-failure device %d outside %d-device array", ErrBadFault, f.Device, devicesPerCart)
		}
	case CartStall:
		if f.Cart != track.NoCart && (f.Cart < 0 || int(f.Cart) >= numCarts) {
			return fmt.Errorf("%w: cart-stall cart %d outside fleet of %d", ErrBadFault, f.Cart, numCarts)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("%w: cart-stall needs a positive clearing time", ErrBadFault)
		}
	case VacuumLeak:
		if f.Pressure <= 0 {
			return fmt.Errorf("%w: vacuum-leak needs positive pressure, got %v Pa", ErrBadFault, f.Pressure)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("%w: vacuum-leak needs a positive sealing time", ErrBadFault)
		}
	case DockFailure:
		if f.Station < 0 || f.Station >= numStations {
			return fmt.Errorf("%w: dock-failure station %d outside bank of %d", ErrBadFault, f.Station, numStations)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("%w: dock-failure needs a positive repair time", ErrBadFault)
		}
	case LIMPowerLoss:
		if f.Duration <= 0 {
			return fmt.Errorf("%w: lim-power-loss needs a positive restore time", ErrBadFault)
		}
	case JunctionFailure:
		if f.Station < 0 || f.Station >= numStations {
			return fmt.Errorf("%w: junction-failure station %d outside campus of %d", ErrBadFault, f.Station, numStations)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("%w: junction-failure needs a positive repair time", ErrBadFault)
		}
	case TubeSegmentFailure:
		if d.Segments < 1 {
			return fmt.Errorf("%w: tube-segment-failure needs a campus deployment (no tube segments)", ErrBadFault)
		}
		if f.Segment < 0 || f.Segment >= d.Segments {
			return fmt.Errorf("%w: tube-segment-failure segment %d outside network of %d", ErrBadFault, f.Segment, d.Segments)
		}
		if f.Duration <= 0 {
			return fmt.Errorf("%w: tube-segment-failure needs a positive repair time", ErrBadFault)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadFault, int(f.Kind))
	}
	return nil
}

// target renders the kind-specific target fields.
func (f Fault) target() string {
	switch f.Kind {
	case SSDFailure:
		return fmt.Sprintf("cart=%d dev=%d", f.Cart, f.Device)
	case CartStall:
		if f.Cart == track.NoCart {
			return fmt.Sprintf("debris dir=%v", f.Direction)
		}
		return fmt.Sprintf("cart=%d dir=%v", f.Cart, f.Direction)
	case VacuumLeak:
		return fmt.Sprintf("pressure=%gPa", f.Pressure)
	case DockFailure:
		return fmt.Sprintf("station=%d", f.Station)
	case LIMPowerLoss:
		return fmt.Sprintf("dir=%v", f.Direction)
	case JunctionFailure:
		return fmt.Sprintf("junction=%d", f.Station)
	case TubeSegmentFailure:
		return fmt.Sprintf("segment=%d", f.Segment)
	default:
		return ""
	}
}

// String renders the fault as a stable, log-friendly line fragment.
func (f Fault) String() string {
	s := fmt.Sprintf("%v %s", f.Kind, f.target())
	if f.Duration > 0 {
		s += fmt.Sprintf(" for %gs", float64(f.Duration))
	}
	return s
}

// Script is a named, time-ordered fault schedule. The zero value is an
// empty script (no faults).
type Script struct {
	Name   string
	Faults []Fault
}

// Validate checks every fault against a point-to-point deployment's
// dimensions. Campus scripts need ValidateDims with Segments set.
func (s Script) Validate(numCarts, numStations, devicesPerCart int) error {
	return s.ValidateDims(Dims{Carts: numCarts, Stations: numStations, DevicesPerCart: devicesPerCart})
}

// ValidateDims checks every fault against the deployment's dimensions.
func (s Script) ValidateDims(d Dims) error {
	for i, f := range s.Faults {
		if err := f.ValidateDims(d); err != nil {
			return fmt.Errorf("%w: script %q fault %d: %v", ErrBadScript, s.Name, i, err)
		}
	}
	return nil
}

// Sorted returns the faults in injection order (stable by At, preserving
// authoring order for ties).
func (s Script) Sorted() []Fault {
	out := append([]Fault(nil), s.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Scenario names understood by Scenario, in the order ScenarioNames
// returns them.
const (
	// ScenarioSSDStorm: a burst of in-flight SSD deaths.
	ScenarioSSDStorm = "ssd-storm"
	// ScenarioLeakyTube: repeated vacuum leaks of varying severity.
	ScenarioLeakyTube = "leaky-tube"
	// ScenarioBlockedTrack: cart stalls and debris on the rail.
	ScenarioBlockedTrack = "blocked-track"
	// ScenarioBrownout: LIM power losses and dock-station failures.
	ScenarioBrownout = "brownout"
	// ScenarioRoughDay: all of the above at once, at lower per-kind rates.
	ScenarioRoughDay = "rough-day"
	// ScenarioCampusPartition: junction and tube-segment failures that
	// carve a campus tube network apart. Campus-only: needs Dims.Segments.
	ScenarioCampusPartition = "campus-partition"
)

// ScenarioNames lists the named chaos scenarios.
func ScenarioNames() []string {
	return []string{
		ScenarioSSDStorm,
		ScenarioLeakyTube,
		ScenarioBlockedTrack,
		ScenarioBrownout,
		ScenarioRoughDay,
		ScenarioCampusPartition,
	}
}

// ErrUnknownScenario is returned for scenario names outside ScenarioNames.
var ErrUnknownScenario = errors.New("faults: unknown scenario")

// Scenario generates a named chaos script for a point-to-point deployment
// of the given dimensions over [0, horizon]. Campus-only scenarios
// (ScenarioCampusPartition) need ScenarioDims with Segments set.
func Scenario(name string, seed int64, horizon units.Seconds, numCarts, numStations, devicesPerCart int) (Script, error) {
	return ScenarioDims(name, seed, horizon, Dims{Carts: numCarts, Stations: numStations, DevicesPerCart: devicesPerCart})
}

// ScenarioDims generates a named chaos script for a deployment of the
// given dimensions over [0, horizon]. Generation draws only from a
// *rand.Rand seeded with seed, so a (name, seed, horizon, dims) tuple
// always yields the identical script — the replayable unit of a chaos
// experiment.
func ScenarioDims(name string, seed int64, horizon units.Seconds, d Dims) (Script, error) {
	if horizon <= 0 {
		return Script{}, fmt.Errorf("%w: horizon must be positive, got %v", ErrBadScript, horizon)
	}
	if d.Carts < 1 || d.Stations < 1 || d.DevicesPerCart < 1 {
		return Script{}, fmt.Errorf("%w: deployment dimensions must be positive", ErrBadScript)
	}
	if name == ScenarioCampusPartition && d.Segments < 1 {
		return Script{}, fmt.Errorf("%w: scenario %q needs a campus deployment (Dims.Segments >= 1)", ErrBadScript, name)
	}
	rng := rand.New(rand.NewSource(seed))
	g := generator{rng: rng, horizon: horizon, carts: d.Carts, stations: d.Stations, devices: d.DevicesPerCart, segments: d.Segments}
	s := Script{Name: name}
	switch name {
	case ScenarioSSDStorm:
		s.Faults = g.ssdFailures(12)
	case ScenarioLeakyTube:
		s.Faults = g.vacuumLeaks(4)
	case ScenarioBlockedTrack:
		s.Faults = g.stalls(6)
	case ScenarioBrownout:
		s.Faults = append(g.limLosses(4), g.dockFailures(3)...)
	case ScenarioRoughDay:
		s.Faults = append(s.Faults, g.ssdFailures(5)...)
		s.Faults = append(s.Faults, g.vacuumLeaks(2)...)
		s.Faults = append(s.Faults, g.stalls(3)...)
		s.Faults = append(s.Faults, g.limLosses(2)...)
		s.Faults = append(s.Faults, g.dockFailures(2)...)
	case ScenarioCampusPartition:
		s.Faults = append(g.junctionFailures(3), g.segmentFailures(6)...)
	default:
		return Script{}, fmt.Errorf("%w: %q (known: %v)", ErrUnknownScenario, name, ScenarioNames())
	}
	s.Faults = Script{Faults: s.Faults}.Sorted()
	if err := s.ValidateDims(d); err != nil {
		return Script{}, err
	}
	return s, nil
}

// generator draws scenario faults from one seeded source. Each kind uses
// exponential inter-arrival times with mean horizon/expected, so expected
// counts land on average but every draw stays inside the horizon.
type generator struct {
	rng      *rand.Rand
	horizon  units.Seconds
	carts    int
	stations int
	devices  int
	segments int
}

// arrivals samples injection times over the horizon with the given
// expected count.
func (g *generator) arrivals(expected int) []units.Seconds {
	mean := float64(g.horizon) / float64(expected)
	var out []units.Seconds
	t := 0.0
	for {
		t += g.rng.ExpFloat64() * mean
		if t >= float64(g.horizon) {
			return out
		}
		out = append(out, units.Seconds(t))
	}
}

// window samples an outage duration in [lo, hi) fractions of the horizon.
func (g *generator) window(lo, hi float64) units.Seconds {
	f := lo + g.rng.Float64()*(hi-lo)
	return units.Seconds(f * float64(g.horizon))
}

func (g *generator) ssdFailures(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		out = append(out, Fault{
			Kind:   SSDFailure,
			At:     t,
			Cart:   track.CartID(g.rng.Intn(g.carts)),
			Device: g.rng.Intn(g.devices),
		})
	}
	return out
}

func (g *generator) vacuumLeaks(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		// Severity is log-uniform from a minor leak (50× rough vacuum) to
		// a major breach approaching one atmosphere.
		p := 5e3 * math.Pow(101325.0/5e3, g.rng.Float64())
		out = append(out, Fault{
			Kind:     VacuumLeak,
			At:       t,
			Duration: g.window(0.05, 0.20),
			Pressure: p,
		})
	}
	return out
}

func (g *generator) stalls(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		cart := track.NoCart
		if g.rng.Float64() < 0.5 {
			cart = track.CartID(g.rng.Intn(g.carts))
		}
		out = append(out, Fault{
			Kind:      CartStall,
			At:        t,
			Duration:  g.window(0.02, 0.10),
			Cart:      cart,
			Direction: track.Direction(g.rng.Intn(2)),
		})
	}
	return out
}

func (g *generator) limLosses(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		out = append(out, Fault{
			Kind:      LIMPowerLoss,
			At:        t,
			Duration:  g.window(0.03, 0.12),
			Direction: track.Direction(g.rng.Intn(2)),
		})
	}
	return out
}

func (g *generator) junctionFailures(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		out = append(out, Fault{
			Kind:     JunctionFailure,
			At:       t,
			Duration: g.window(0.08, 0.25),
			Station:  g.rng.Intn(g.stations),
		})
	}
	return out
}

func (g *generator) segmentFailures(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		out = append(out, Fault{
			Kind:     TubeSegmentFailure,
			At:       t,
			Duration: g.window(0.05, 0.20),
			Segment:  g.rng.Intn(g.segments),
		})
	}
	return out
}

func (g *generator) dockFailures(expected int) []Fault {
	var out []Fault
	for _, t := range g.arrivals(expected) {
		out = append(out, Fault{
			Kind:     DockFailure,
			At:       t,
			Duration: g.window(0.05, 0.15),
			Station:  g.rng.Intn(g.stations),
		})
	}
	return out
}
