package faults

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Target is the system a fault script acts on. Inject applies a fault at
// its scheduled time; Recover fires Duration later for faults with an
// outage window. Both run on the simulation's event loop, so they may
// mutate simulation state freely but must not block.
type Target interface {
	Inject(Fault)
	Recover(Fault)
}

// Phase distinguishes the two halves of a fault's life in the event log.
type Phase string

const (
	// PhaseInject marks the fault striking.
	PhaseInject Phase = "inject"
	// PhaseRecover marks the fault's repair completing.
	PhaseRecover Phase = "recover"
)

// Record is one event-log entry. Records are appended in simulation-time
// order (the event kernel fires in timestamp order), so the log for a
// fixed script is byte-identical across runs.
type Record struct {
	T     units.Seconds
	Phase Phase
	Fault Fault
}

// String renders the record as one stable log line.
func (r Record) String() string {
	return fmt.Sprintf("t=%.3fs %s %v", float64(r.T), r.Phase, r.Fault)
}

// KindStats aggregates one taxonomy kind.
type KindStats struct {
	Kind      Kind
	Injected  int
	Recovered int
	// Downtime is the summed outage window of this kind's recovered
	// faults (overlaps between kinds are not deduplicated here; see
	// Injector.Downtime for the union).
	Downtime units.Seconds
}

// Summary is the per-kind fault accounting, in fixed taxonomy order —
// never map-ordered, so serialisations are deterministic.
type Summary struct {
	Total   int
	PerKind []KindStats
}

// String renders the non-zero rows.
func (s Summary) String() string {
	out := fmt.Sprintf("%d faults", s.Total)
	for _, ks := range s.PerKind {
		if ks.Injected == 0 {
			continue
		}
		out += fmt.Sprintf("; %v×%d", ks.Kind, ks.Injected)
	}
	return out
}

// Injector arms a fault script on a simulation engine and replays it
// against a target. It also accepts immediate injections (InjectNow) from
// stochastic fault sources that roll their own explicitly-seeded dice —
// e.g. the per-launch SSD failure probability — so every fault in a run,
// scripted or rolled, lands in one log and one taxonomy.
type Injector struct {
	engine *sim.Engine
	target Target
	script Script

	log     []Record
	perKind [numKinds]KindStats

	// Outage-union bookkeeping: downtime is the measure of the union of
	// all outage windows seen so far, openStart the start of the current
	// open interval while active > 0.
	active    int
	openStart units.Seconds
	downtime  units.Seconds

	// Telemetry (optional, nil-safe): per-kind inject counters, a total,
	// and instant marks + outage spans on the "faults" track.
	telInjected  *telemetry.Counter
	telRecovered *telemetry.Counter
	telPerKind   [numKinds]*telemetry.Counter
	telSpans     *telemetry.SpanLog

	// Interned span-log IDs (SetTelemetry): the faults track, each kind's
	// instant-mark name, and each kind's outage-span name. Stochastic
	// sources strike on the hot event loop, so marks are ID-based records.
	trackID   telemetry.StrID
	kindIDs   [numKinds]telemetry.StrID
	outageIDs [numKinds]telemetry.StrID
}

// FaultTrack is the span-log track name fault events land on.
const FaultTrack = "faults"

// Interned per-kind event and span names. Stochastic sources inject on
// the hot event loop (the per-launch SSD dice), so the naming of fault,
// repair, and outage events must not concatenate strings per fault.
var (
	faultEventNames    [numKinds]string
	repairEventNames   [numKinds]string
	outageSpanNames    [numKinds]string
	perKindMetricNames [numKinds]string
)

func init() {
	for k := 0; k < int(numKinds); k++ {
		s := Kind(k).String()
		faultEventNames[k] = "fault:" + s
		repairEventNames[k] = "repair:" + s
		outageSpanNames[k] = "outage:" + s
		perKindMetricNames[k] = "dhl_faults_" + s + "_total"
	}
}

// SetTelemetry wires the injector to a telemetry set: every fault
// increments dhl_faults_injected_total and its per-kind counter, repairs
// increment dhl_faults_recovered_total, and the span log receives an
// instant mark per phase plus an outage span per windowed fault. A nil
// set (or nil fields) disables the corresponding output; call before
// driving the simulation.
func (in *Injector) SetTelemetry(set *telemetry.Set) {
	reg := set.MetricsOf()
	in.telInjected = reg.Counter("dhl_faults_injected_total")
	in.telRecovered = reg.Counter("dhl_faults_recovered_total")
	for k := 0; k < int(numKinds); k++ {
		in.telPerKind[k] = reg.Counter(perKindMetricNames[k])
	}
	in.telSpans = set.SpansOf()
	in.trackID = in.telSpans.Intern(FaultTrack)
	for k := 0; k < int(numKinds); k++ {
		in.kindIDs[k] = in.telSpans.Intern(Kind(k).String())
		in.outageIDs[k] = in.telSpans.Intern(outageSpanNames[k])
	}
}

// NewInjector builds an injector for one engine/target pair. The script
// may be empty (stochastic-only operation).
func NewInjector(engine *sim.Engine, target Target, script Script) (*Injector, error) {
	if engine == nil {
		return nil, errors.New("faults: nil engine")
	}
	if target == nil {
		return nil, errors.New("faults: nil target")
	}
	return &Injector{engine: engine, target: target, script: script}, nil
}

// Script returns the armed script.
func (in *Injector) Script() Script { return in.script }

// Arm schedules every scripted fault (and its recovery) on the engine.
// Call once, before driving the simulation.
func (in *Injector) Arm() error {
	for _, f := range in.script.Sorted() {
		f := f
		if _, err := in.engine.At(f.At, faultEventNames[f.Kind], func() {
			in.apply(f)
		}); err != nil {
			return fmt.Errorf("faults: arming %v: %w", f, err)
		}
	}
	return nil
}

// InjectNow applies a fault immediately at the engine's current time,
// bypassing the script — the entry point for stochastic sources.
func (in *Injector) InjectNow(f Fault) {
	f.At = in.engine.Now()
	in.apply(f)
}

// apply strikes the fault: log, account, notify the target, and schedule
// the recovery if the fault has an outage window.
func (in *Injector) apply(f Fault) {
	now := in.engine.Now()
	in.log = append(in.log, Record{T: now, Phase: PhaseInject, Fault: f})
	ks := &in.perKind[f.Kind]
	ks.Kind = f.Kind
	ks.Injected++
	in.telInjected.Inc()
	in.telPerKind[f.Kind].Inc()
	in.telSpans.RecordInstant(in.trackID, in.kindIDs[f.Kind], now,
		telemetry.KV{Key: "phase", Value: string(PhaseInject)},
		telemetry.KV{Key: "target", Value: f.target()})
	if f.Duration > 0 {
		if in.active == 0 {
			in.openStart = now
		}
		in.active++
		in.engine.MustAfter(f.Duration, repairEventNames[f.Kind], func() {
			in.recover(f)
		})
	}
	in.target.Inject(f)
}

func (in *Injector) recover(f Fault) {
	now := in.engine.Now()
	in.log = append(in.log, Record{T: now, Phase: PhaseRecover, Fault: f})
	ks := &in.perKind[f.Kind]
	ks.Recovered++
	ks.Downtime += f.Duration
	in.telRecovered.Inc()
	in.telSpans.RecordSpan(in.trackID, in.outageIDs[f.Kind], now-f.Duration, now,
		telemetry.KV{Key: "target", Value: f.target()})
	in.active--
	if in.active == 0 {
		in.downtime += now - in.openStart
	}
	in.target.Recover(f)
}

// Log returns the event log so far, in simulation-time order.
func (in *Injector) Log() []Record { return append([]Record(nil), in.log...) }

// LogLines renders the event log as stable strings — the byte-identity
// artefact chaos runs compare across replays.
func (in *Injector) LogLines() []string {
	out := make([]string, len(in.log))
	for i, r := range in.log {
		out[i] = r.String()
	}
	return out
}

// Summary returns the per-kind accounting in taxonomy order.
func (in *Injector) Summary() Summary {
	s := Summary{PerKind: make([]KindStats, numKinds)}
	for i := range in.perKind {
		ks := in.perKind[i]
		ks.Kind = Kind(i)
		s.PerKind[i] = ks
		s.Total += ks.Injected
	}
	return s
}

// Downtime returns the measure of the union of all outage windows up to
// the engine's current time: the "not fully nominal" time an availability
// figure divides by. Overlapping faults of any kind count once.
func (in *Injector) Downtime() units.Seconds {
	d := in.downtime
	if in.active > 0 {
		d += in.engine.Now() - in.openStart
	}
	return d
}
