package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/track"
	"repro/internal/units"
)

func TestKindStringsAndTaxonomyOrder(t *testing.T) {
	want := []string{"ssd-failure", "cart-stall", "vacuum-leak", "dock-failure", "lim-power-loss", "junction-failure", "tube-segment-failure"}
	ks := Kinds()
	if len(ks) != NumKinds || NumKinds != len(want) {
		t.Fatalf("Kinds() = %v (NumKinds=%d), want %d kinds", ks, NumKinds, len(want))
	}
	for i, k := range ks {
		if k.String() != want[i] {
			t.Errorf("Kind(%d).String() = %q, want %q", i, k, want[i])
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out-of-range kind renders %q", got)
	}
}

func TestFaultValidate(t *testing.T) {
	const carts, stations, devices = 4, 2, 16
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"ssd ok", Fault{Kind: SSDFailure, Cart: 3, Device: 15}, true},
		{"ssd cart out of fleet", Fault{Kind: SSDFailure, Cart: 4}, false},
		{"ssd device out of array", Fault{Kind: SSDFailure, Device: 16}, false},
		{"negative time", Fault{Kind: SSDFailure, At: -1}, false},
		{"negative duration", Fault{Kind: SSDFailure, Duration: -1}, false},
		{"stall ok", Fault{Kind: CartStall, Cart: 0, Duration: 5}, true},
		{"stall debris ok", Fault{Kind: CartStall, Cart: track.NoCart, Duration: 5}, true},
		{"stall zero clearing time", Fault{Kind: CartStall, Cart: 0}, false},
		{"stall cart out of fleet", Fault{Kind: CartStall, Cart: 9, Duration: 5}, false},
		{"leak ok", Fault{Kind: VacuumLeak, Pressure: 1e4, Duration: 10}, true},
		{"leak zero pressure", Fault{Kind: VacuumLeak, Duration: 10}, false},
		{"leak zero sealing time", Fault{Kind: VacuumLeak, Pressure: 1e4}, false},
		{"dock ok", Fault{Kind: DockFailure, Station: 1, Duration: 3}, true},
		{"dock station out of bank", Fault{Kind: DockFailure, Station: 2, Duration: 3}, false},
		{"dock zero repair time", Fault{Kind: DockFailure, Station: 0}, false},
		{"lim ok", Fault{Kind: LIMPowerLoss, Duration: 2}, true},
		{"lim zero restore time", Fault{Kind: LIMPowerLoss}, false},
		{"junction ok", Fault{Kind: JunctionFailure, Station: 1, Duration: 4}, true},
		{"junction station out of campus", Fault{Kind: JunctionFailure, Station: 2, Duration: 4}, false},
		{"junction zero repair time", Fault{Kind: JunctionFailure, Station: 0}, false},
		{"segment needs campus dims", Fault{Kind: TubeSegmentFailure, Segment: 0, Duration: 4}, false},
		{"unknown kind", Fault{Kind: Kind(42), Duration: 1}, false},
	}
	for _, c := range cases {
		err := c.f.Validate(carts, stations, devices)
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate(%+v) = %v, want ok=%v", c.name, c.f, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadFault) {
			t.Errorf("%s: error %v must wrap ErrBadFault", c.name, err)
		}
	}
}

func TestFaultValidateDimsCampus(t *testing.T) {
	d := Dims{Carts: 4, Stations: 24, DevicesPerCart: 16, Segments: 10}
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"segment ok", Fault{Kind: TubeSegmentFailure, Segment: 9, Duration: 4}, true},
		{"segment out of network", Fault{Kind: TubeSegmentFailure, Segment: 10, Duration: 4}, false},
		{"segment negative", Fault{Kind: TubeSegmentFailure, Segment: -1, Duration: 4}, false},
		{"segment zero repair time", Fault{Kind: TubeSegmentFailure, Segment: 0}, false},
		{"junction ok on campus", Fault{Kind: JunctionFailure, Station: 23, Duration: 4}, true},
	}
	for _, c := range cases {
		err := c.f.ValidateDims(d)
		if (err == nil) != c.ok {
			t.Errorf("%s: ValidateDims(%+v) = %v, want ok=%v", c.name, c.f, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadFault) {
			t.Errorf("%s: error %v must wrap ErrBadFault", c.name, err)
		}
	}
}

func TestScriptValidateWrapsBadScript(t *testing.T) {
	s := Script{Name: "bad", Faults: []Fault{{Kind: VacuumLeak}}}
	err := s.Validate(1, 1, 1)
	if !errors.Is(err, ErrBadScript) {
		t.Fatalf("Validate = %v, want ErrBadScript", err)
	}
	if !strings.Contains(err.Error(), `"bad" fault 0`) {
		t.Errorf("error should name the script and index: %v", err)
	}
}

func TestScriptSortedIsStableAndNonDestructive(t *testing.T) {
	s := Script{Faults: []Fault{
		{Kind: LIMPowerLoss, At: 5, Duration: 1},
		{Kind: SSDFailure, At: 2, Device: 0},
		{Kind: SSDFailure, At: 2, Device: 1}, // tie with the previous: authoring order must hold
		{Kind: DockFailure, At: 1, Duration: 1},
	}}
	got := s.Sorted()
	if got[0].Kind != DockFailure || got[1].Device != 0 || got[2].Device != 1 || got[3].Kind != LIMPowerLoss {
		t.Errorf("Sorted() = %+v", got)
	}
	if s.Faults[0].Kind != LIMPowerLoss {
		t.Error("Sorted() must not mutate the script")
	}
}

func TestScenarioDeterministicAcrossCalls(t *testing.T) {
	const horizon = units.Seconds(100)
	// Campus dims satisfy every scenario, including campus-partition.
	dims := Dims{Carts: 4, Stations: 4, DevicesPerCart: 16, Segments: 8}
	for _, name := range ScenarioNames() {
		a, err := ScenarioDims(name, 7, horizon, dims)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := ScenarioDims(name, 7, horizon, dims)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same (seed, horizon, dims) produced different scripts:\n%+v\nvs\n%+v", name, a, b)
		}
		if len(a.Faults) == 0 {
			t.Errorf("%s: scenario generated no faults over %v", name, horizon)
		}
		for i, f := range a.Faults {
			if f.At < 0 || f.At >= horizon {
				t.Errorf("%s fault %d: At=%v outside [0, %v)", name, i, f.At, horizon)
			}
			if i > 0 && f.At < a.Faults[i-1].At {
				t.Errorf("%s: faults not time-ordered at %d", name, i)
			}
		}
		if err := a.ValidateDims(dims); err != nil {
			t.Errorf("%s: generated script fails its own validation: %v", name, err)
		}
	}
}

func TestScenarioCampusPartitionNeedsSegments(t *testing.T) {
	// The legacy point-to-point Scenario entry point (Segments=0) must
	// reject the campus-only scenario with a clear error.
	if _, err := Scenario(ScenarioCampusPartition, 1, 100, 4, 4, 16); !errors.Is(err, ErrBadScript) {
		t.Errorf("point-to-point campus-partition: %v, want ErrBadScript", err)
	}
	s, err := ScenarioDims(ScenarioCampusPartition, 1, 100, Dims{Carts: 4, Stations: 24, DevicesPerCart: 16, Segments: 12})
	if err != nil {
		t.Fatal(err)
	}
	var junctions, segments int
	for _, f := range s.Faults {
		switch f.Kind {
		case JunctionFailure:
			junctions++
		case TubeSegmentFailure:
			segments++
		default:
			t.Errorf("campus-partition generated non-campus fault %v", f.Kind)
		}
	}
	if junctions == 0 || segments == 0 {
		t.Errorf("campus-partition should mix junction (%d) and segment (%d) failures", junctions, segments)
	}
}

func TestScenarioSeedsDiverge(t *testing.T) {
	a, err := Scenario(ScenarioRoughDay, 1, 100, 4, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scenario(ScenarioRoughDay, 2, 100, 4, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical rough-day scripts")
	}
}

func TestScenarioRejectsBadInputs(t *testing.T) {
	if _, err := Scenario("meteor-shower", 1, 100, 4, 4, 16); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("unknown scenario: %v", err)
	}
	if _, err := Scenario(ScenarioSSDStorm, 1, 0, 4, 4, 16); !errors.Is(err, ErrBadScript) {
		t.Errorf("zero horizon: %v", err)
	}
	if _, err := Scenario(ScenarioSSDStorm, 1, 100, 0, 4, 16); !errors.Is(err, ErrBadScript) {
		t.Errorf("zero carts: %v", err)
	}
}

// recordingTarget captures the order faults arrive in.
type recordingTarget struct {
	events []string
}

func (r *recordingTarget) Inject(f Fault)  { r.events = append(r.events, "inject:"+f.Kind.String()) }
func (r *recordingTarget) Recover(f Fault) { r.events = append(r.events, "recover:"+f.Kind.String()) }

func TestNewInjectorRejectsNils(t *testing.T) {
	eng := sim.New()
	if _, err := NewInjector(nil, &recordingTarget{}, Script{}); err == nil {
		t.Error("nil engine must be rejected")
	}
	if _, err := NewInjector(eng, nil, Script{}); err == nil {
		t.Error("nil target must be rejected")
	}
}

func TestInjectorReplaysScriptInOrder(t *testing.T) {
	eng := sim.New()
	tgt := &recordingTarget{}
	script := Script{Name: "unit", Faults: []Fault{
		{Kind: VacuumLeak, At: 10, Duration: 5, Pressure: 1e4},
		{Kind: SSDFailure, At: 1, Cart: 0, Device: 0},
		{Kind: LIMPowerLoss, At: 2, Duration: 20, Direction: track.Outbound},
	}}
	inj, err := NewInjector(eng, tgt, script)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	wantTarget := []string{
		"inject:ssd-failure",     // t=1
		"inject:lim-power-loss",  // t=2
		"inject:vacuum-leak",     // t=10
		"recover:vacuum-leak",    // t=15
		"recover:lim-power-loss", // t=22
	}
	if !reflect.DeepEqual(tgt.events, wantTarget) {
		t.Errorf("target saw %v, want %v", tgt.events, wantTarget)
	}
	lines := inj.LogLines()
	wantLog := []string{
		"t=1.000s inject ssd-failure cart=0 dev=0",
		"t=2.000s inject lim-power-loss dir=outbound for 20s",
		"t=10.000s inject vacuum-leak pressure=10000Pa for 5s",
		"t=15.000s recover vacuum-leak pressure=10000Pa for 5s",
		"t=22.000s recover lim-power-loss dir=outbound for 20s",
	}
	if !reflect.DeepEqual(lines, wantLog) {
		t.Errorf("log lines:\n%v\nwant:\n%v", strings.Join(lines, "\n"), strings.Join(wantLog, "\n"))
	}
	// Downtime is the union of [2,22] and [10,15] — the leak is fully
	// inside the LIM outage and must not double-count.
	if d := inj.Downtime(); d != 20 {
		t.Errorf("Downtime = %v, want 20 (union of overlapping windows)", d)
	}
	sum := inj.Summary()
	if sum.Total != 3 {
		t.Errorf("Summary.Total = %d, want 3", sum.Total)
	}
	if len(sum.PerKind) != NumKinds {
		t.Fatalf("Summary.PerKind has %d rows, want fixed taxonomy of %d", len(sum.PerKind), NumKinds)
	}
	for i, ks := range sum.PerKind {
		if ks.Kind != Kind(i) {
			t.Errorf("PerKind[%d].Kind = %v; summary must stay in taxonomy order", i, ks.Kind)
		}
	}
	if ks := sum.PerKind[VacuumLeak]; ks.Injected != 1 || ks.Recovered != 1 || ks.Downtime != 5 {
		t.Errorf("vacuum-leak stats = %+v", ks)
	}
	if ks := sum.PerKind[SSDFailure]; ks.Injected != 1 || ks.Recovered != 0 || ks.Downtime != 0 {
		t.Errorf("ssd-failure stats = %+v (instantaneous faults never recover)", ks)
	}
}

func TestInjectorDowntimeCountsOpenInterval(t *testing.T) {
	eng := sim.New()
	inj, err := NewInjector(eng, &recordingTarget{}, Script{Faults: []Fault{
		{Kind: DockFailure, At: 5, Duration: 100, Station: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	// Advance to t=30: the outage began at 5 and is still open.
	eng.MustAfter(30, "probe", func() {})
	eng.RunUntil(30)
	if d := inj.Downtime(); d != 25 {
		t.Errorf("Downtime mid-outage = %v, want 25", d)
	}
}

func TestInjectNowStampsEngineTime(t *testing.T) {
	eng := sim.New()
	tgt := &recordingTarget{}
	inj, err := NewInjector(eng, tgt, Script{})
	if err != nil {
		t.Fatal(err)
	}
	eng.MustAfter(7, "roll", func() {
		inj.InjectNow(Fault{Kind: SSDFailure, Cart: 0, Device: 3})
	})
	if _, err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	log := inj.Log()
	if len(log) != 1 || log[0].T != 7 || log[0].Fault.At != 7 {
		t.Fatalf("log = %+v, want one record stamped t=7", log)
	}
	if len(tgt.events) != 1 || tgt.events[0] != "inject:ssd-failure" {
		t.Errorf("target saw %v", tgt.events)
	}
}
