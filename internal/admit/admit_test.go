package admit

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// at is a virtual clock helper: seconds past an arbitrary epoch.
func at(s float64) time.Time {
	return time.Unix(0, 0).Add(time.Duration(s * float64(time.Second)))
}

func TestDefaults(t *testing.T) {
	c := New(Options{})
	o := c.Options()
	if o.MaxInFlight != 1 || o.MaxQueue != 64 {
		t.Errorf("defaults: %+v", o)
	}
	if o.BrownoutFrac != 0.5 || o.RetryAfterMin != 50*time.Millisecond {
		t.Errorf("defaults: %+v", o)
	}
}

func TestImmediateAdmissionThenQueueThenShed(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 2})
	now := at(0)

	t1, o1 := c.Arrive(ClassIO, 1, now)
	if !o1.Admitted || o1.Queued || t1 == nil {
		t.Fatalf("first arrival should run immediately: %+v", o1)
	}
	t2, o2 := c.Arrive(ClassIO, 2, now)
	if !o2.Admitted || !o2.Queued {
		t.Fatalf("second arrival should queue: %+v", o2)
	}
	_, o3 := c.Arrive(ClassIO, 3, now)
	if !o3.Admitted || !o3.Queued {
		t.Fatalf("third arrival should queue: %+v", o3)
	}
	tk4, o4 := c.Arrive(ClassIO, 4, now)
	if o4.Admitted || tk4 != nil {
		t.Fatalf("fourth arrival should shed: %+v", o4)
	}
	if o4.Reason != ReasonQueueFull {
		t.Errorf("reason = %v, want queue-full", o4.Reason)
	}
	if o4.RetryAfter <= 0 {
		t.Errorf("shed outcome must carry a retry-after hint, got %v", o4.RetryAfter)
	}

	// Finish the runner; promote a waiter; room opens up.
	if err := c.Done(t1, at(0.2)); err != nil {
		t.Fatal(err)
	}
	c.Started(t2, at(0.2))
	_, o5 := c.Arrive(ClassIO, 5, at(0.2))
	if !o5.Admitted {
		t.Fatalf("slot freed, arrival should queue again: %+v", o5)
	}
	s := c.Snapshot()
	if s.InFlight != 1 || s.QueueDepth != 2 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestRetryAfterGrowsWithBacklog(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 100, ServiceTimeHint: time.Second})
	now := at(0)
	c.Arrive(ClassIO, -1, now) // running
	var prev time.Duration
	for i := 0; i < 20; i++ {
		c.Arrive(ClassIO, -1, now) // queue up
	}
	// Shed probes at increasing depth must see non-decreasing hints.
	c2 := New(Options{MaxInFlight: 1, MaxQueue: 5, ServiceTimeHint: time.Second})
	c2.Arrive(ClassIO, -1, now)
	for i := 0; i < 5; i++ {
		c2.Arrive(ClassIO, -1, now)
		_, o := c2.Arrive(ClassControl, -1, now)
		if o.Admitted {
			continue
		}
		if o.RetryAfter < prev {
			t.Errorf("retry-after shrank with deeper queue: %v -> %v", prev, o.RetryAfter)
		}
		prev = o.RetryAfter
	}
	_, o := c.Arrive(ClassIO, -1, now)
	if !o.Admitted {
		t.Fatalf("queue of 100 should still admit: %+v", o)
	}
}

func TestTokenBucketDeterministic(t *testing.T) {
	run := func() []bool {
		c := New(Options{MaxInFlight: 10, MaxQueue: 10, Rate: 2, Burst: 2})
		var got []bool
		// 10 arrivals at 0.25s spacing against a 2/s bucket of burst 2.
		for i := 0; i < 10; i++ {
			tk, o := c.Arrive(ClassIO, -1, at(float64(i)*0.25))
			got = append(got, o.Admitted)
			if tk != nil {
				c.Done(tk, at(float64(i)*0.25+0.01))
			}
		}
		return got
	}
	a, b := run(), run()
	admitted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token bucket nondeterministic at %d: %v vs %v", i, a, b)
		}
		if a[i] {
			admitted++
		}
	}
	// Burst 2 up front plus 2/s over 2.25s of arrivals: 6–7 admits.
	if admitted < 5 || admitted > 8 {
		t.Errorf("admitted %d of 10, want ~6-7: %v", admitted, a)
	}
}

func TestControlClassBypassesRateLimit(t *testing.T) {
	c := New(Options{MaxInFlight: 100, MaxQueue: 10, Rate: 1, Burst: 1})
	now := at(0)
	c.Arrive(ClassIO, -1, now) // drains the only token
	if _, o := c.Arrive(ClassIO, -1, now); o.Admitted {
		t.Fatal("bucket empty, IO should shed")
	} else if o.Reason != ReasonRateLimited {
		t.Errorf("reason = %v", o.Reason)
	}
	if _, o := c.Arrive(ClassControl, -1, now); !o.Admitted {
		t.Errorf("control reads must bypass the bucket: %+v", o)
	}
}

func TestBrownoutShedsLaunchFirst(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 10, BrownoutFrac: 0.5})
	now := at(0)
	c.Arrive(ClassIO, -1, now) // running
	for i := 0; i < 5; i++ {   // queue to the brownout threshold
		if _, o := c.Arrive(ClassIO, -1, now); !o.Admitted {
			t.Fatalf("fill %d: %+v", i, o)
		}
	}
	if _, o := c.Arrive(ClassLaunch, -1, now); o.Admitted {
		t.Fatal("launch should shed in brownout")
	} else if o.Reason != ReasonBrownout {
		t.Errorf("reason = %v, want brownout", o.Reason)
	}
	if _, o := c.Arrive(ClassIO, -1, now); !o.Admitted {
		t.Errorf("IO should still queue during brownout: %+v", o)
	}
	if _, o := c.Arrive(ClassControl, -1, now); !o.Admitted {
		t.Errorf("control should still queue during brownout: %+v", o)
	}
	if !c.Snapshot().Brownout {
		t.Error("snapshot should report brownout")
	}
}

func TestPerConnCap(t *testing.T) {
	c := New(Options{MaxInFlight: 10, MaxQueue: 10, PerConn: 2})
	now := at(0)
	t1, _ := c.Arrive(ClassIO, 7, now)
	c.Arrive(ClassIO, 7, now)
	if _, o := c.Arrive(ClassIO, 7, now); o.Admitted {
		t.Fatal("third outstanding request on conn 7 should shed")
	} else if o.Reason != ReasonPerConn {
		t.Errorf("reason = %v", o.Reason)
	}
	// Other connections are unaffected.
	if _, o := c.Arrive(ClassIO, 8, now); !o.Admitted {
		t.Errorf("conn 8 should admit: %+v", o)
	}
	// Finishing one frees the slot.
	c.Done(t1, at(0.1))
	if _, o := c.Arrive(ClassIO, 7, now); !o.Admitted {
		t.Errorf("slot freed, conn 7 should admit: %+v", o)
	}
}

func TestAbandonReleasesQueueSlot(t *testing.T) {
	c := New(Options{MaxInFlight: 1, MaxQueue: 1})
	now := at(0)
	c.Arrive(ClassIO, -1, now)
	tq, o := c.Arrive(ClassIO, -1, now)
	if !o.Queued {
		t.Fatalf("should queue: %+v", o)
	}
	if _, o := c.Arrive(ClassIO, -1, now); o.Admitted {
		t.Fatal("queue full")
	}
	if err := c.Abandon(tq); err != nil {
		t.Fatal(err)
	}
	if _, o := c.Arrive(ClassIO, -1, now); !o.Admitted {
		t.Errorf("abandon should free the queue slot: %+v", o)
	}
	if err := c.Abandon(tq); err != ErrTicketReused {
		t.Errorf("double release = %v, want ErrTicketReused", err)
	}
	if got := c.Snapshot().Classes[int(ClassIO)].Abandoned; got != 1 {
		t.Errorf("abandoned = %d, want 1", got)
	}
}

func TestServiceEstimateTracksCompletions(t *testing.T) {
	c := New(Options{ServiceTimeHint: 100 * time.Millisecond})
	est0 := c.Snapshot().EstServiceS
	for i := 0; i < 40; i++ {
		tk, _ := c.Arrive(ClassIO, -1, at(float64(i)))
		c.Done(tk, at(float64(i)+2)) // 2s services
	}
	est := c.Snapshot().EstServiceS
	if est <= est0 || est < 1.5 {
		t.Errorf("estimate should converge toward 2s: %v -> %v", est0, est)
	}
}

func TestSnapshotJSONDeterministicOrder(t *testing.T) {
	c := New(Options{})
	a, _ := json.Marshal(c.Snapshot())
	b, _ := json.Marshal(c.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("snapshot marshal differs:\n%s\n%s", a, b)
	}
	want := `"classes":[{"class":"control"`
	if got := string(a); !contains(got, want) {
		t.Errorf("classes not in fixed order: %s", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestConcurrentUse hammers the controller from many goroutines so the
// race detector can vet the locking (the counts themselves are checked
// for conservation).
func TestConcurrentUse(t *testing.T) {
	c := New(Options{MaxInFlight: 4, MaxQueue: 8, PerConn: 3, Rate: 1e9, Burst: 1e9})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(conn int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				now := at(float64(i))
				tk, o := c.Arrive(ClassIO, conn, now)
				if !o.Admitted {
					continue
				}
				if o.Queued {
					if i%2 == 0 {
						c.Abandon(tk)
						continue
					}
					c.Started(tk, now)
				}
				c.Done(tk, now.Add(time.Millisecond))
			}
		}(int64(w))
	}
	wg.Wait()
	s := c.Snapshot()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Errorf("leaked slots: %+v", s)
	}
}
