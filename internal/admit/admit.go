// Package admit is the overload-protection layer of the control plane:
// a deterministic admission controller that decides, per request, whether
// to run it now, let it wait in a bounded queue, or shed it with an
// explicit retry-after hint.
//
// The controller composes four defences:
//
//   - A token-bucket rate limiter bounds sustained admission rate.
//     Control-class requests (status/metrics reads) bypass the bucket so
//     observability survives overload.
//   - A global in-flight cap plus a bounded waiting room replace
//     unbounded queueing: once MaxQueue waiters are parked, further
//     requests are rejected immediately with Outcome.RetryAfter derived
//     from the queue depth and a smoothed service-time estimate.
//   - A per-connection outstanding-request cap stops one pipelining peer
//     from monopolising the waiting room.
//   - Brownout mode sheds expensive work first: when the queue passes
//     BrownoutFrac of its capacity, launch-class requests (cart
//     open/close — the multi-second operations) are rejected while
//     cheaper IO continues to queue, and control reads still pass.
//
// Determinism contract: the controller never reads the wall clock, an
// RNG, or the environment. Every method takes the caller's notion of
// "now" explicitly, so a virtual-clock harness (cmd/dhlload) replaying
// the same arrival sequence observes byte-identical decisions, and the
// live server simply passes time.Now(). All arithmetic is plain float64
// and integer nanoseconds with no map iteration.
//
// Thread safety: every mutable field is guarded by one mutex and
// annotated //dhllint:guardedby, so the lockcheck pass proves the
// discipline by construction.
package admit

import (
	"errors"
	"sync"
	"time"
)

// Class is a request priority class. Lower classes are shed later.
type Class int

const (
	// ClassControl: status/metrics reads. Never rate-limited, shed only
	// when the waiting room is completely full (the server normally
	// answers these from a cached snapshot without queueing at all).
	ClassControl Class = iota
	// ClassIO: read/write against a docked cart.
	ClassIO
	// ClassLaunch: cart open/close — the expensive multi-second
	// operations, first to go in brownout.
	ClassLaunch

	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassIO:
		return "io"
	case ClassLaunch:
		return "launch"
	default:
		return "unknown"
	}
}

// Classes lists the priority classes in shed order (last shed first).
func Classes() []Class { return []Class{ClassControl, ClassIO, ClassLaunch} }

// Reason explains a shed decision.
type Reason int

const (
	// ReasonNone: the request was admitted.
	ReasonNone Reason = iota
	// ReasonRateLimited: the token bucket was empty.
	ReasonRateLimited
	// ReasonQueueFull: the waiting room was at MaxQueue.
	ReasonQueueFull
	// ReasonBrownout: the queue passed the brownout threshold and the
	// request's class is shed under brownout.
	ReasonBrownout
	// ReasonPerConn: the connection already has PerConn requests
	// outstanding.
	ReasonPerConn

	numReasons
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "admitted"
	case ReasonRateLimited:
		return "rate-limited"
	case ReasonQueueFull:
		return "queue-full"
	case ReasonBrownout:
		return "brownout"
	case ReasonPerConn:
		return "per-conn-limit"
	default:
		return "unknown"
	}
}

// Options configures a Controller. The zero value is not useful; New
// applies the documented defaults to zero fields.
type Options struct {
	// MaxInFlight caps concurrently executing requests. The control
	// plane's simulation executor is single-threaded, so its server uses
	// 1; a sharded deployment would raise it. Default 1.
	MaxInFlight int
	// MaxQueue bounds the waiting room behind the executor. Arrivals
	// beyond it are shed with ReasonQueueFull. Default 64.
	MaxQueue int
	// PerConn caps outstanding (queued + running) requests per
	// connection; 0 disables. A serial request/response connection never
	// exceeds 1, so this bites only for pipelining peers.
	PerConn int
	// Rate is the token-bucket sustained admission rate in requests per
	// second; 0 disables rate limiting. Control-class requests bypass
	// the bucket.
	Rate float64
	// Burst is the bucket capacity; defaults to max(Rate, 1) when Rate
	// is set.
	Burst float64
	// BrownoutFrac is the queue-depth fraction of MaxQueue at which
	// brownout begins (launch-class arrivals shed). Default 0.5;
	// set >= 1 to disable brownout.
	BrownoutFrac float64
	// RetryAfterMin and RetryAfterMax clamp the retry-after hint carried
	// by shed outcomes. Defaults 50ms and 10s.
	RetryAfterMin time.Duration
	RetryAfterMax time.Duration
	// ServiceTimeHint seeds the smoothed per-request service-time
	// estimate before any request has completed. Default 100ms.
	ServiceTimeHint time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 1
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.Rate > 0 && o.Burst <= 0 {
		o.Burst = o.Rate
		if o.Burst < 1 {
			o.Burst = 1
		}
	}
	if o.BrownoutFrac <= 0 {
		o.BrownoutFrac = 0.5
	}
	if o.RetryAfterMin <= 0 {
		o.RetryAfterMin = 50 * time.Millisecond
	}
	if o.RetryAfterMax <= 0 {
		o.RetryAfterMax = 10 * time.Second
	}
	if o.RetryAfterMax < o.RetryAfterMin {
		o.RetryAfterMax = o.RetryAfterMin
	}
	if o.ServiceTimeHint <= 0 {
		o.ServiceTimeHint = 100 * time.Millisecond
	}
	return o
}

// Outcome is an admission decision.
type Outcome struct {
	// Admitted: the request may proceed (immediately when Queued is
	// false, after waiting for an executor slot when true).
	Admitted bool
	// Queued: the request was parked in the waiting room; the caller
	// must call Started when it wins an executor slot or Abandon if it
	// gives up waiting.
	Queued bool
	// Reason explains a rejection (ReasonNone when admitted).
	Reason Reason
	// RetryAfter hints when a shed request should retry. Zero when
	// admitted.
	RetryAfter time.Duration
}

// Ticket tracks one admitted request through the controller. Tickets are
// owned by a single request handler and must not be shared.
type Ticket struct {
	class  Class
	conn   int64
	start  time.Time
	queued bool
	done   bool
}

// ErrTicketReused reports a ticket handed back twice.
var ErrTicketReused = errors.New("admit: ticket already released")

// ClassCounters is the per-class admission ledger inside Stats.
type ClassCounters struct {
	Class       string `json:"class"`
	Admitted    uint64 `json:"admitted"`
	Queued      uint64 `json:"queued"`
	RateLimited uint64 `json:"shed_rate_limited"`
	QueueFull   uint64 `json:"shed_queue_full"`
	Brownout    uint64 `json:"shed_brownout"`
	PerConn     uint64 `json:"shed_per_conn"`
	Abandoned   uint64 `json:"abandoned"`
}

// Shed is the total number of rejected requests in this class.
func (c ClassCounters) Shed() uint64 {
	return c.RateLimited + c.QueueFull + c.Brownout + c.PerConn
}

// Stats is a deterministic point-in-time snapshot of the controller:
// classes appear in fixed Class order, never map order.
type Stats struct {
	InFlight    int             `json:"in_flight"`
	QueueDepth  int             `json:"queue_depth"`
	Brownout    bool            `json:"brownout"`
	EstServiceS float64         `json:"est_service_s"`
	Classes     []ClassCounters `json:"classes"`
}

// Controller is the admission state machine. Safe for concurrent use.
type Controller struct {
	opt Options

	mu sync.Mutex
	//dhllint:guardedby mu
	inflight int
	//dhllint:guardedby mu
	queued int
	//dhllint:guardedby mu
	perConn map[int64]int
	//dhllint:guardedby mu
	tokens float64
	//dhllint:guardedby mu
	lastRefill time.Time
	//dhllint:guardedby mu
	haveRefill bool
	//dhllint:guardedby mu
	estService float64 // smoothed seconds per request
	//dhllint:guardedby mu
	admitted [numClasses]uint64
	//dhllint:guardedby mu
	everQueued [numClasses]uint64
	//dhllint:guardedby mu
	shed [numClasses][numReasons]uint64
	//dhllint:guardedby mu
	abandoned [numClasses]uint64
}

// New builds a controller; zero Options fields take the documented
// defaults.
func New(opt Options) *Controller {
	opt = opt.withDefaults()
	return &Controller{
		opt:        opt,
		perConn:    make(map[int64]int),
		tokens:     opt.Burst,
		estService: opt.ServiceTimeHint.Seconds(),
	}
}

// Options reports the controller's effective (defaulted) options.
func (c *Controller) Options() Options { return c.opt }

// refillLocked advances the token bucket to now. Callers hold mu.
func (c *Controller) refillLocked(now time.Time) {
	if c.opt.Rate <= 0 {
		return
	}
	if !c.haveRefill {
		c.lastRefill = now
		c.haveRefill = true
		return
	}
	dt := now.Sub(c.lastRefill).Seconds()
	if dt <= 0 {
		return
	}
	c.tokens += dt * c.opt.Rate
	if c.tokens > c.opt.Burst {
		c.tokens = c.opt.Burst
	}
	c.lastRefill = now
}

// retryAfterLocked derives the shed hint from the backlog: the time for
// the executor(s) to clear the current queue at the smoothed service
// rate, clamped to [RetryAfterMin, RetryAfterMax]. Callers hold mu.
func (c *Controller) retryAfterLocked() time.Duration {
	backlog := float64(c.queued+c.inflight) * c.estService / float64(c.opt.MaxInFlight)
	d := time.Duration(backlog * float64(time.Second))
	if d < c.opt.RetryAfterMin {
		d = c.opt.RetryAfterMin
	}
	if d > c.opt.RetryAfterMax {
		d = c.opt.RetryAfterMax
	}
	return d
}

// tokenRetryLocked is the hint for a rate-limit shed: time until one
// token accrues. Callers hold mu.
func (c *Controller) tokenRetryLocked() time.Duration {
	if c.opt.Rate <= 0 {
		return c.opt.RetryAfterMin
	}
	need := 1 - c.tokens
	if need < 0 {
		need = 0
	}
	d := time.Duration(need / c.opt.Rate * float64(time.Second))
	if d < c.opt.RetryAfterMin {
		d = c.opt.RetryAfterMin
	}
	if d > c.opt.RetryAfterMax {
		d = c.opt.RetryAfterMax
	}
	return d
}

// brownoutLocked reports whether the queue has passed the brownout
// threshold. Callers hold mu.
func (c *Controller) brownoutLocked() bool {
	return float64(c.queued) >= c.opt.BrownoutFrac*float64(c.opt.MaxQueue)
}

// Arrive decides one request. conn identifies the requesting connection
// for the per-connection cap (pass a negative value to opt out). The
// returned Ticket is non-nil exactly when the outcome is Admitted; the
// caller must hand it back via Done (after running) or Abandon (if it
// gave up while queued).
func (c *Controller) Arrive(class Class, conn int64, now time.Time) (*Ticket, Outcome) {
	if class < 0 || class >= numClasses {
		class = ClassIO
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refillLocked(now)

	// Rate limit first: it bounds offered work before any state is
	// touched. Control reads bypass it — observability must survive.
	if class != ClassControl && c.opt.Rate > 0 && c.tokens < 1 {
		c.shed[class][ReasonRateLimited]++
		return nil, Outcome{Reason: ReasonRateLimited, RetryAfter: c.tokenRetryLocked()}
	}
	if c.opt.PerConn > 0 && conn >= 0 && c.perConn[conn] >= c.opt.PerConn {
		c.shed[class][ReasonPerConn]++
		return nil, Outcome{Reason: ReasonPerConn, RetryAfter: c.retryAfterLocked()}
	}

	t := &Ticket{class: class, conn: conn, start: now}
	if c.inflight < c.opt.MaxInFlight {
		c.admitLocked(t, now)
		return t, Outcome{Admitted: true}
	}

	// Executor saturated: queue or shed.
	if c.queued >= c.opt.MaxQueue {
		c.shed[class][ReasonQueueFull]++
		return nil, Outcome{Reason: ReasonQueueFull, RetryAfter: c.retryAfterLocked()}
	}
	if class == ClassLaunch && c.brownoutLocked() {
		c.shed[class][ReasonBrownout]++
		return nil, Outcome{Reason: ReasonBrownout, RetryAfter: c.retryAfterLocked()}
	}
	t.queued = true
	c.queued++
	c.everQueued[class]++
	c.chargeLocked(t)
	return t, Outcome{Admitted: true, Queued: true}
}

// admitLocked moves a ticket straight to running. Callers hold mu.
func (c *Controller) admitLocked(t *Ticket, now time.Time) {
	c.inflight++
	c.admitted[t.class]++
	t.start = now
	c.chargeLocked(t)
}

// chargeLocked spends a token and takes a per-conn slot. Callers hold mu.
func (c *Controller) chargeLocked(t *Ticket) {
	if t.class != ClassControl && c.opt.Rate > 0 {
		c.tokens--
		if c.tokens < 0 {
			c.tokens = 0
		}
	}
	if c.opt.PerConn > 0 && t.conn >= 0 {
		c.perConn[t.conn]++
	}
}

// releaseConnLocked returns a per-conn slot. Callers hold mu.
func (c *Controller) releaseConnLocked(t *Ticket) {
	if c.opt.PerConn <= 0 || t.conn < 0 {
		return
	}
	if n := c.perConn[t.conn] - 1; n > 0 {
		c.perConn[t.conn] = n
	} else {
		delete(c.perConn, t.conn)
	}
}

// Started promotes a queued ticket to running once the caller wins an
// executor slot; it restarts the ticket's service-time clock. A no-op
// for tickets admitted immediately.
func (c *Controller) Started(t *Ticket, now time.Time) {
	if t == nil || !t.queued {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.queued = false
	c.queued--
	c.inflight++
	c.admitted[t.class]++
	t.start = now
}

// Abandon releases a still-queued ticket whose caller gave up waiting
// (request timeout). Abandoned requests count separately from sheds.
func (c *Controller) Abandon(t *Ticket) error {
	if t == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		return ErrTicketReused
	}
	t.done = true
	if t.queued {
		t.queued = false
		c.queued--
	} else {
		c.inflight--
	}
	c.abandoned[t.class]++
	c.releaseConnLocked(t)
	return nil
}

// Done releases a running ticket and folds its service time into the
// smoothed estimate that prices retry-after hints.
func (c *Controller) Done(t *Ticket, now time.Time) error {
	if t == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		return ErrTicketReused
	}
	t.done = true
	c.inflight--
	c.releaseConnLocked(t)
	if dur := now.Sub(t.start).Seconds(); dur > 0 {
		// EWMA with alpha 0.2: stable enough to price hints, fast
		// enough to track a chaos-degraded service rate.
		c.estService = 0.8*c.estService + 0.2*dur
	}
	return nil
}

// Snapshot returns the controller's ledger. Classes are listed in fixed
// Class order, making any serialisation byte-deterministic.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		InFlight:    c.inflight,
		QueueDepth:  c.queued,
		Brownout:    c.brownoutLocked(),
		EstServiceS: c.estService,
	}
	s.Classes = make([]ClassCounters, 0, int(numClasses))
	for _, cl := range Classes() {
		s.Classes = append(s.Classes, ClassCounters{
			Class:       cl.String(),
			Admitted:    c.admitted[cl],
			Queued:      c.everQueued[cl],
			RateLimited: c.shed[cl][ReasonRateLimited],
			QueueFull:   c.shed[cl][ReasonQueueFull],
			Brownout:    c.shed[cl][ReasonBrownout],
			PerConn:     c.shed[cl][ReasonPerConn],
			Abandoned:   c.abandoned[cl],
		})
	}
	return s
}
