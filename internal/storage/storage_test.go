package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestCatalogDensityObservation(t *testing.T) {
	// §II-A: "the 8TB M.2 SSD is almost 100× lighter than the 3.5" HDD for
	// just 12.5× less capacity" — the density-per-gram argument.
	massRatio := float64(WDGold.Mass) / float64(SabrentRocket4Plus.Mass)
	capRatio := float64(WDGold.Capacity) / float64(SabrentRocket4Plus.Capacity)
	if massRatio < 100 || massRatio > 125 {
		t.Errorf("mass ratio = %v, want ≈118 (\"almost 100×\")", massRatio)
	}
	approx(t, "capacity ratio", capRatio, 3, 0.01) // 24/8
	// Nimbus vs largest regular HDD: 100 TB ≈ 4.2× the 24 TB WD Gold
	// (the paper's "5×" rounds against its 20 TB-class reference).
	if NimbusExaDrive.Capacity <= 4*WDGold.Capacity {
		t.Error("ExaDrive should be >4× WD Gold capacity")
	}
	// Per-gram density ordering: M.2 ≫ ExaDrive > HDD.
	m2 := SabrentRocket4Plus.DensityPerGram()
	exa := NimbusExaDrive.DensityPerGram()
	hdd := WDGold.DensityPerGram()
	if !(m2 > exa && exa > hdd) {
		t.Errorf("density ordering broken: m2=%v exa=%v hdd=%v", m2, exa, hdd)
	}
}

func TestReproDiskCounts(t *testing.T) {
	// §II-C: "29PB requires 1319 22TB HDDs or 290 100TB SSDs".
	if got := WD22TB.DrivesFor(29 * units.PB); got != 1319 {
		t.Errorf("22TB HDDs for 29PB = %d, want 1319", got)
	}
	if got := NimbusExaDrive.DrivesFor(29 * units.PB); got != 290 {
		t.Errorf("100TB SSDs for 29PB = %d, want 290", got)
	}
	if got := SabrentRocket4Plus.DrivesFor(0); got != 0 {
		t.Errorf("drives for 0 bytes = %d, want 0", got)
	}
}

func TestDeviceSpecString(t *testing.T) {
	s := SabrentRocket4Plus.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestDeviceWriteReadLifecycle(t *testing.T) {
	d := NewDevice(SabrentRocket4Plus)
	if d.Free() != 8*units.TB {
		t.Fatalf("fresh device free = %v", d.Free())
	}
	wt, err := d.Write(6 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "write time", float64(wt), 6e12/6e9, 1e-9) // 6 TB at 6 GB/s = 1000 s
	rt, err := d.Read(6 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "read time", float64(rt), 6e12/7.1e9, 1e-9)
	if d.Used() != 6*units.TB || d.Free() != 2*units.TB {
		t.Errorf("used=%v free=%v", d.Used(), d.Free())
	}
	r, w := d.Totals()
	if r != 6*units.TB || w != 6*units.TB {
		t.Errorf("totals r=%v w=%v", r, w)
	}
}

func TestDeviceErrors(t *testing.T) {
	d := NewDevice(SabrentRocket4Plus)
	if _, err := d.Write(9 * units.TB); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("overfill err = %v", err)
	}
	if _, err := d.Read(units.GB); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read-unwritten err = %v", err)
	}
	if _, err := d.Write(-1); !errors.Is(err, ErrNegativeLength) {
		t.Errorf("negative write err = %v", err)
	}
	if _, err := d.Read(-1); !errors.Is(err, ErrNegativeLength) {
		t.Errorf("negative read err = %v", err)
	}
	d.Fail()
	if !d.Failed() {
		t.Error("Fail() did not stick")
	}
	if _, err := d.Write(units.GB); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("failed write err = %v", err)
	}
	if _, err := d.Read(0); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("failed read err = %v", err)
	}
	d.Repair()
	if d.Failed() || d.Used() != 0 {
		t.Error("Repair() must restore health and reset contents")
	}
}

func TestDevicePlugCycles(t *testing.T) {
	d := NewDevice(SabrentRocket4Plus) // rated 300 cycles
	for i := 0; i < 300; i++ {
		if !d.Plug() {
			t.Fatalf("plug %d should be within rating", i+1)
		}
	}
	if d.Plug() {
		t.Error("plug 301 should exceed the M.2 rating")
	}
	if d.PlugCount() != 301 {
		t.Errorf("plug count = %d", d.PlugCount())
	}
	unrated := NewDevice(DeviceSpec{Name: "x", Capacity: units.TB})
	if !unrated.Plug() {
		t.Error("unrated connector should never exceed rating")
	}
}

func TestPCIeLaneRate(t *testing.T) {
	r6, err := PCIeLaneRate(6)
	if err != nil {
		t.Fatal(err)
	}
	// §III-B.5: 3.8 Tb/s over 64 lanes.
	approx(t, "pcie6 ×64", float64(r6)*64, 3.8e12, 1e-9)
	if _, err := PCIeLaneRate(7); err == nil {
		t.Error("unknown generation must error")
	}
}

func TestArrayValidation(t *testing.T) {
	if _, err := NewArray(RAID0, SabrentRocket4Plus, 0, 6, 1); !errors.Is(err, ErrNoDevices) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewArray(RAID5, SabrentRocket4Plus, 2, 6, 1); err == nil {
		t.Error("RAID5 with 2 devices must be rejected")
	}
	if _, err := NewArray(RAID0, SabrentRocket4Plus, 4, 9, 1); err == nil {
		t.Error("bad PCIe generation must be rejected")
	}
	if _, err := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 0); err == nil {
		t.Error("zero lanes must be rejected")
	}
}

func TestCartArrayCapacityAndBandwidth(t *testing.T) {
	// The paper's default cart: 32 × 8 TB M.2 = 256 TB.
	a, err := NewArray(RAID0, SabrentRocket4Plus, 32, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() != 256*units.TB {
		t.Errorf("capacity = %v, want 256TB", a.Capacity())
	}
	// Device-sum read bandwidth 32×7.1 GB/s = 227.2 GB/s; PCIe6 ×32 lanes =
	// 1.9 Tb/s = 237.5 GB/s, so devices limit.
	approx(t, "read bw", float64(a.ReadBandwidth()), 227.2e9, 1e-9)
	// Local access "well into the terabytes per second" needs more lanes:
	// 64-SSD cart: 64×7.1 = 454.4 GB/s device-limited.
	big, _ := NewArray(RAID0, SabrentRocket4Plus, 64, 6, 1)
	approx(t, "64-SSD read bw", float64(big.ReadBandwidth()), 454.4e9, 1e-9)
}

func TestArrayPCIeCapApplies(t *testing.T) {
	// Constrain to PCIe gen 3 ×1 per device: 1 GB/s per device caps the
	// 7.1 GB/s devices.
	a, err := NewArray(RAID0, SabrentRocket4Plus, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "capped bw", float64(a.ReadBandwidth()), 4e9, 1e-9)
	tt, err := a.Write(4 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	// PCIe-capped write: 4 TB at 4 GB/s = 1000 s (device-limited would be
	// 1 TB/device at 6 GB/s ≈ 167 s).
	approx(t, "capped write time", float64(tt), 1000, 1e-9)
}

func TestArrayStripedTiming(t *testing.T) {
	a, _ := NewArray(RAID0, SabrentRocket4Plus, 32, 6, 2)
	tt, err := a.Write(256 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	// 8 TB per device at 6 GB/s = 1333.3 s.
	approx(t, "full write", float64(tt), 8e12/6e9, 1e-9)
	rt, err := a.Read(256 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "full read", float64(rt), 8e12/7.1e9, 1e-9)
	if _, err := a.Write(units.GB); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("overfill err = %v", err)
	}
}

func TestArrayErrors(t *testing.T) {
	a, _ := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 1)
	if _, err := a.Write(-1); !errors.Is(err, ErrNegativeLength) {
		t.Errorf("err = %v", err)
	}
	if _, err := a.Read(-1); !errors.Is(err, ErrNegativeLength) {
		t.Errorf("err = %v", err)
	}
	if _, err := a.Read(units.GB); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if err := a.FailDevice(7); err == nil {
		t.Error("out-of-range FailDevice must error")
	}
}

func TestRAID0FailureIsFatal(t *testing.T) {
	a, _ := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 1)
	if _, err := a.Write(units.TB); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDevice(2); err != nil {
		t.Fatal(err)
	}
	if a.Healthy() {
		t.Error("RAID0 with a failed device must be unhealthy")
	}
	if _, err := a.Read(units.TB); !errors.Is(err, ErrDegraded) {
		t.Errorf("read err = %v", err)
	}
}

func TestRAID5SurvivesOneFailure(t *testing.T) {
	a, err := NewArray(RAID5, SabrentRocket4Plus, 33, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 33 devices, 32 data: usable 256 TB.
	if a.Capacity() != 256*units.TB {
		t.Errorf("RAID5 capacity = %v", a.Capacity())
	}
	if _, err := a.Write(100 * units.TB); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDevice(5); err != nil {
		t.Fatal(err)
	}
	if !a.Healthy() || !a.Degraded() {
		t.Error("one failure must leave RAID5 healthy but degraded")
	}
	if _, err := a.Read(100 * units.TB); err != nil {
		t.Errorf("degraded read failed: %v", err)
	}
	rt, err := a.RebuildTime()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild limited by the 6 GB/s replacement write of 8 TB.
	approx(t, "rebuild", float64(rt), 8e12/6e9, 1e-9)
	// Second failure is fatal.
	if err := a.FailDevice(6); err != nil {
		t.Fatal(err)
	}
	if a.Healthy() {
		t.Error("two failures must kill RAID5")
	}
	if _, err := a.Read(units.GB); !errors.Is(err, ErrDegraded) {
		t.Errorf("err = %v", err)
	}
}

func TestRebuildOnlyWhenDegraded(t *testing.T) {
	a, _ := NewArray(RAID5, SabrentRocket4Plus, 4, 6, 1)
	if _, err := a.RebuildTime(); err == nil {
		t.Error("rebuild of healthy array must error")
	}
	r0, _ := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 1)
	if _, err := r0.RebuildTime(); err == nil {
		t.Error("rebuild of RAID0 must error")
	}
}

func TestArrayActivePower(t *testing.T) {
	a, _ := NewArray(RAID0, SabrentRocket4Plus, 32, 6, 1)
	// §VI heat-sink discussion: 32 SSDs × 10 W = 320 W under load.
	if a.ActivePower() != 320 {
		t.Errorf("active power = %v, want 320W", a.ActivePower())
	}
	a.Devices[0].Fail()
	if a.ActivePower() != 310 {
		t.Errorf("power after failure = %v, want 310W", a.ActivePower())
	}
}

func TestArrayWriteReadConservationProperty(t *testing.T) {
	f := func(raw uint32) bool {
		n := units.Bytes(float64(raw%1000)+1) * units.GB
		a, err := NewArray(RAID0, SabrentRocket4Plus, 8, 6, 1)
		if err != nil {
			return false
		}
		if _, err := a.Write(n); err != nil {
			return false
		}
		if math.Abs(float64(a.Used()-n)) > 1e-3 {
			return false
		}
		_, err = a.Read(n)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRAIDLevelString(t *testing.T) {
	if RAID0.String() != "RAID0" || RAID5.String() != "RAID5" {
		t.Error("RAID level strings wrong")
	}
	if RAIDLevel(7).String() != "RAIDLevel(7)" {
		t.Errorf("got %q", RAIDLevel(7).String())
	}
}

func TestDensityPerGramDegenerate(t *testing.T) {
	d := DeviceSpec{Capacity: units.TB}
	if !math.IsInf(float64(d.DensityPerGram()), 1) {
		t.Error("zero mass must give +Inf density")
	}
}

func TestRAID0DegradedReadServesSurvivingStripes(t *testing.T) {
	a, _ := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 1)
	if _, err := a.Write(20 * units.TB); err != nil {
		t.Fatal(err)
	}
	// Healthy arrays delegate: DegradedRead == Read.
	hd, err := a.DegradedRead(8 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := a.Read(8 * units.TB)
	if err != nil {
		t.Fatal(err)
	}
	if hd != hr {
		t.Errorf("healthy DegradedRead = %v, Read = %v; must match", hd, hr)
	}

	if err := a.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	if got := a.SurvivingDevices(); got != 3 {
		t.Errorf("SurvivingDevices = %d, want 3", got)
	}
	// One of four stripes is gone: 15 TB of the 20 TB payload survives.
	if got := a.AvailablePayload(); got != 15*units.TB {
		t.Errorf("AvailablePayload = %v, want 15 TB", got)
	}
	dt, err := a.DegradedRead(15 * units.TB)
	if err != nil {
		t.Fatalf("degraded read of available payload: %v", err)
	}
	if dt <= 0 {
		t.Errorf("degraded read time = %v, must be positive", dt)
	}
	// Asking beyond the survivors is out of range, not a cart death.
	if _, err := a.DegradedRead(16 * units.TB); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("over-available read err = %v, want ErrOutOfRange", err)
	}
	if _, err := a.DegradedRead(-1); !errors.Is(err, ErrNegativeLength) {
		t.Errorf("negative read err = %v", err)
	}
}

func TestDegradedReadSlowerOnFewerDevices(t *testing.T) {
	healthy, _ := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 1)
	degraded, _ := NewArray(RAID0, SabrentRocket4Plus, 4, 6, 1)
	for _, a := range []*Array{healthy, degraded} {
		if _, err := a.Write(20 * units.TB); err != nil {
			t.Fatal(err)
		}
	}
	if err := degraded.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	const n = 12 * units.TB
	ht, err := healthy.Read(n)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := degraded.DegradedRead(n)
	if err != nil {
		t.Fatal(err)
	}
	if dt < ht {
		t.Errorf("degraded read %v faster than healthy %v; three devices cannot beat four", dt, ht)
	}
}

func TestRAID5PastRedundancyServesNothing(t *testing.T) {
	a, _ := NewArray(RAID5, SabrentRocket4Plus, 4, 6, 1)
	if _, err := a.Write(10 * units.TB); err != nil {
		t.Fatal(err)
	}
	// One failure: parity covers it, everything still available.
	if err := a.FailDevice(0); err != nil {
		t.Fatal(err)
	}
	if got := a.AvailablePayload(); got != 10*units.TB {
		t.Errorf("singly-degraded RAID5 AvailablePayload = %v, want full 10 TB", got)
	}
	// Two failures: the stripe set is unrecoverable.
	if err := a.FailDevice(1); err != nil {
		t.Fatal(err)
	}
	if got := a.AvailablePayload(); got != 0 {
		t.Errorf("doubly-failed RAID5 AvailablePayload = %v, want 0", got)
	}
	if _, err := a.DegradedRead(units.GB); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read from dead RAID5 err = %v, want ErrOutOfRange", err)
	}
}
