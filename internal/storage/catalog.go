// Package storage models the storage media underpinning the DHL: the device
// catalogue of Table II, simulated SSD devices with sequential bandwidth and
// wear, RAID-0 striping across a cart's SSDs, and the PCIe interface that a
// docking station exposes to compute nodes (§III-B.5).
package storage

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// FormFactor describes a device package.
type FormFactor string

// Form factors from Table II.
const (
	FormFactor35 FormFactor = "3.5\""
	FormFactorM2 FormFactor = "M.2"
	FormFactorU2 FormFactor = "U.2"
)

// DeviceSpec is one row of the paper's Table II storage catalogue.
type DeviceSpec struct {
	Name       string
	Kind       string // "HDD" or "SSD"
	Capacity   units.Bytes
	Form       FormFactor
	Mass       units.Grams
	ReadRate   units.BytesPerSecond // sequential read
	WriteRate  units.BytesPerSecond // sequential write
	PlugCycles int                  // rated connector plug/unplug cycles
}

// Table II device catalogue, plus connector longevity from §VI.
var (
	// WDGold is the 24 TB 3.5" enterprise HDD.
	WDGold = DeviceSpec{
		Name: "WD Gold", Kind: "HDD", Capacity: 24 * units.TB,
		Form: FormFactor35, Mass: 670, ReadRate: 291 * units.MBps,
		WriteRate: 291 * units.MBps, PlugCycles: 500,
	}
	// NimbusExaDrive is the 100 TB 3.5" SSD.
	NimbusExaDrive = DeviceSpec{
		Name: "Nimbus ExaDrive", Kind: "SSD", Capacity: 100 * units.TB,
		Form: FormFactor35, Mass: 538, ReadRate: 500 * units.MBps,
		WriteRate: 460 * units.MBps, PlugCycles: 500,
	}
	// SabrentRocket4Plus is the 8 TB M.2 SSD the DHL cart is built from.
	SabrentRocket4Plus = DeviceSpec{
		Name: "Sabrent Rocket 4 Plus", Kind: "SSD", Capacity: 8 * units.TB,
		Form: FormFactorM2, Mass: 5.67, ReadRate: 7100 * units.MBps,
		WriteRate: 6000 * units.MBps, PlugCycles: 300, // M.2: "100s of cycles"
	}
	// WD22TB is the 22 TB HDD used in the paper's "1319 drives by hand"
	// thought experiment (§II-C).
	WD22TB = DeviceSpec{
		Name: "22TB HDD", Kind: "HDD", Capacity: 22 * units.TB,
		Form: FormFactor35, Mass: 670, ReadRate: 291 * units.MBps,
		WriteRate: 291 * units.MBps, PlugCycles: 500,
	}
)

// Catalog lists all known devices.
func Catalog() []DeviceSpec {
	return []DeviceSpec{WDGold, NimbusExaDrive, SabrentRocket4Plus, WD22TB}
}

// DensityPerGram is the storage density in bytes per gram — the quantity the
// paper observes has been "quietly skyrocketing" for M.2 SSDs.
func (d DeviceSpec) DensityPerGram() units.BytesPerGram {
	if d.Mass <= 0 {
		return units.BytesPerGram(math.Inf(1))
	}
	return units.BytesPerGram(float64(d.Capacity) / float64(d.Mass))
}

// DrivesFor returns how many of this device are needed to hold the dataset.
func (d DeviceSpec) DrivesFor(data units.Bytes) int {
	if d.Capacity <= 0 {
		return 0
	}
	return int(math.Ceil(float64(data) / float64(d.Capacity)))
}

// String summarises the device.
func (d DeviceSpec) String() string {
	return fmt.Sprintf("%s (%s %s, %v, %v)", d.Name, d.Form, d.Kind, d.Capacity, d.Mass)
}

// MaxPowerM2 is the peak power draw of an M.2 SSD under load (§VI "an M.2
// SSD can consume up to 10W under load").
const MaxPowerM2 units.Watts = 10
