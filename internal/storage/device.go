package storage

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Errors returned by Device operations.
var (
	ErrDeviceFailed   = errors.New("storage: device has failed")
	ErrOutOfSpace     = errors.New("storage: write beyond device capacity")
	ErrOutOfRange     = errors.New("storage: read beyond device capacity")
	ErrNegativeLength = errors.New("storage: negative transfer length")
)

// Device is a simulated block device. It does not hold payload bytes — the
// models only care about capacities, timing, energy, and failure state — but
// it tracks an allocation watermark, wear counters and health so that the
// DHL system simulation can exercise realistic storage behaviour.
type Device struct {
	Spec DeviceSpec

	used         units.Bytes
	bytesRead    units.Bytes
	bytesWritten units.Bytes
	failed       bool
	plugCount    int
}

// NewDevice creates a healthy, empty device of the given spec.
func NewDevice(spec DeviceSpec) *Device { return &Device{Spec: spec} }

// Used returns the allocation watermark.
func (d *Device) Used() units.Bytes { return d.used }

// Free returns the remaining capacity.
func (d *Device) Free() units.Bytes { return d.Spec.Capacity - d.used }

// Failed reports whether the device has been failed (e.g. in-flight SSD
// failure injection, §III-D).
func (d *Device) Failed() bool { return d.failed }

// Fail marks the device as failed. Subsequent reads and writes error.
func (d *Device) Fail() { d.failed = true }

// Repair restores a failed device (cart serviced at the library, §III-B.6).
// Contents are considered lost: the watermark resets.
func (d *Device) Repair() {
	d.failed = false
	d.used = 0
}

// Plug records one connector mating cycle and reports whether the connector
// is still within its rated life (§VI, Increasing Connector Longevity).
func (d *Device) Plug() (withinRating bool) {
	d.plugCount++
	return d.Spec.PlugCycles <= 0 || d.plugCount <= d.Spec.PlugCycles
}

// PlugCount returns the number of mating cycles so far.
func (d *Device) PlugCount() int { return d.plugCount }

// Write appends n bytes, returning the transfer time at the device's
// sequential write rate.
//
//dhllint:hotpath
func (d *Device) Write(n units.Bytes) (units.Seconds, error) {
	if n < 0 {
		return 0, ErrNegativeLength
	}
	if d.failed {
		//dhllint:allow allocflow -- failed-device rejection is the fault path, not steady-state I/O
		return 0, fmt.Errorf("%w: %s", ErrDeviceFailed, d.Spec.Name)
	}
	if d.used+n > d.Spec.Capacity {
		//dhllint:allow allocflow -- capacity exhaustion ends the run; steady-state writes stay under the watermark
		return 0, fmt.Errorf("%w: %v used, %v requested, %v capacity",
			ErrOutOfSpace, d.used, n, d.Spec.Capacity)
	}
	d.used += n
	d.bytesWritten += n
	return d.Spec.WriteRate.TransferTime(n), nil
}

// Read reads n bytes from the allocated region, returning the transfer time
// at the device's sequential read rate.
//
//dhllint:hotpath
func (d *Device) Read(n units.Bytes) (units.Seconds, error) {
	if n < 0 {
		return 0, ErrNegativeLength
	}
	if d.failed {
		//dhllint:allow allocflow -- failed-device rejection is the fault path, not steady-state I/O
		return 0, fmt.Errorf("%w: %s", ErrDeviceFailed, d.Spec.Name)
	}
	if n > d.used {
		//dhllint:allow allocflow -- out-of-range read is a caller bug, not steady-state I/O
		return 0, fmt.Errorf("%w: %v allocated, %v requested", ErrOutOfRange, d.used, n)
	}
	d.bytesRead += n
	return d.Spec.ReadRate.TransferTime(n), nil
}

// Totals returns lifetime read and written byte counters.
func (d *Device) Totals() (read, written units.Bytes) { return d.bytesRead, d.bytesWritten }

// ActivePower returns the device's power draw while transferring. M.2 NVMe
// devices draw up to 10 W under load (§VI); HDD/3.5" devices are modelled at
// the same order since only SSD carts matter to the DHL results.
func (d *Device) ActivePower() units.Watts { return MaxPowerM2 }
