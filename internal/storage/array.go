package storage

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// PCIe generation per-lane bandwidths (decimal, after encoding overhead).
// §III-B.5: "version 6 provides 3.8tbps for 64 lanes" → 59.375 Gb/s per lane,
// ≈ 7.42 GB/s; one lane per SSD in the maximum (64-SSD) cart configuration.
var pciePerLane = map[int]units.BitsPerSecond{
	3: 8 * units.Gbps,
	4: 16 * units.Gbps,
	5: 32 * units.Gbps,
	6: units.BitsPerSecond(3.8e12 / 64),
}

// PCIeLaneRate returns the usable per-lane rate for a PCIe generation.
func PCIeLaneRate(gen int) (units.BitsPerSecond, error) {
	r, ok := pciePerLane[gen]
	if !ok {
		//dhllint:allow allocflow -- configuration validation, resolved before any hot I/O begins
		return 0, fmt.Errorf("storage: unsupported PCIe generation %d", gen)
	}
	return r, nil
}

// Errors returned by Array operations.
var (
	ErrNoDevices = errors.New("storage: array needs at least one device")
	ErrDegraded  = errors.New("storage: array degraded beyond redundancy")
)

// RAIDLevel selects the array redundancy scheme.
type RAIDLevel int

const (
	// RAID0 stripes with no redundancy (maximum capacity/bandwidth).
	RAID0 RAIDLevel = iota
	// RAID5 stripes with single-device parity. §III-D: "if an SSD fails
	// in-flight ... RAID and backups can ameliorate the issue".
	RAID5
)

// String implements fmt.Stringer.
func (l RAIDLevel) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID5:
		return "RAID5"
	default:
		return fmt.Sprintf("RAIDLevel(%d)", int(l))
	}
}

// Array is a striped set of devices — the storage view of a cart. Reads and
// writes are striped evenly; aggregate bandwidth is additionally capped by
// the docking station's PCIe lanes.
type Array struct {
	Level   RAIDLevel
	Devices []*Device

	// LanesPerDevice and PCIeGen describe the docking interface.
	LanesPerDevice int
	PCIeGen        int
}

// NewArray builds an array over n fresh devices of the given spec.
func NewArray(level RAIDLevel, spec DeviceSpec, n int, pcieGen, lanesPerDevice int) (*Array, error) {
	if n < 1 {
		return nil, ErrNoDevices
	}
	if level == RAID5 && n < 3 {
		return nil, fmt.Errorf("storage: RAID5 needs ≥3 devices, got %d", n)
	}
	if _, err := PCIeLaneRate(pcieGen); err != nil {
		return nil, err
	}
	if lanesPerDevice < 1 {
		return nil, fmt.Errorf("storage: need ≥1 lane per device, got %d", lanesPerDevice)
	}
	// One backing slab for the fleet's devices: a 32-SSD cart costs two
	// allocations here, not 33, and construction dominates the shuttle
	// benchmarks' allocation budget.
	slab := make([]Device, n)
	devs := make([]*Device, n)
	for i := range devs {
		slab[i] = Device{Spec: spec}
		devs[i] = &slab[i]
	}
	return &Array{Level: level, Devices: devs, LanesPerDevice: lanesPerDevice, PCIeGen: pcieGen}, nil
}

// dataDevices is the number of devices carrying payload (RAID5 spends one on
// parity).
func (a *Array) dataDevices() int {
	if a.Level == RAID5 {
		return len(a.Devices) - 1
	}
	return len(a.Devices)
}

// Capacity is the usable payload capacity.
func (a *Array) Capacity() units.Bytes {
	return units.Bytes(float64(a.dataDevices()) * float64(a.Devices[0].Spec.Capacity))
}

// Used is the payload bytes stored.
func (a *Array) Used() units.Bytes {
	var u units.Bytes
	for _, d := range a.Devices {
		u += d.Used()
	}
	if a.Level == RAID5 {
		u = units.Bytes(float64(u) * float64(a.dataDevices()) / float64(len(a.Devices)))
	}
	return u
}

// failedCount returns the number of failed devices.
func (a *Array) failedCount() int {
	n := 0
	for _, d := range a.Devices {
		if d.Failed() {
			n++
		}
	}
	return n
}

// Healthy reports whether the array can still serve data: RAID0 tolerates no
// failures; RAID5 tolerates one.
func (a *Array) Healthy() bool {
	switch a.Level {
	case RAID5:
		return a.failedCount() <= 1
	default:
		return a.failedCount() == 0
	}
}

// Degraded reports whether redundancy has been consumed but data survives.
func (a *Array) Degraded() bool {
	return a.Level == RAID5 && a.failedCount() == 1
}

// pcieCap is the aggregate docking-interface bandwidth.
func (a *Array) pcieCap() units.BytesPerSecond {
	lane, err := PCIeLaneRate(a.PCIeGen)
	if err != nil {
		return 0
	}
	total := units.BitsPerSecond(float64(lane) * float64(a.LanesPerDevice*len(a.Devices)))
	return total.BytesPerSecond()
}

// ReadBandwidth is the aggregate sequential read bandwidth of the array:
// sum of healthy device rates, capped by PCIe.
func (a *Array) ReadBandwidth() units.BytesPerSecond {
	return a.aggBandwidth(func(d *Device) units.BytesPerSecond { return d.Spec.ReadRate })
}

// WriteBandwidth is the aggregate sequential write bandwidth.
func (a *Array) WriteBandwidth() units.BytesPerSecond {
	return a.aggBandwidth(func(d *Device) units.BytesPerSecond { return d.Spec.WriteRate })
}

func (a *Array) aggBandwidth(rate func(*Device) units.BytesPerSecond) units.BytesPerSecond {
	var sum units.BytesPerSecond
	for _, d := range a.Devices {
		if !d.Failed() {
			sum += rate(d)
		}
	}
	if cap := a.pcieCap(); sum > cap {
		sum = cap
	}
	return sum
}

// Write stripes n payload bytes across the array, returning the transfer
// time (devices operate in parallel: the slowest stripe dominates, then the
// PCIe cap applies).
//
//dhllint:hotpath
func (a *Array) Write(n units.Bytes) (units.Seconds, error) {
	if n < 0 {
		return 0, ErrNegativeLength
	}
	if !a.Healthy() {
		return 0, ErrDegraded
	}
	if a.Used()+n > a.Capacity() {
		//dhllint:allow allocflow -- capacity exhaustion ends the run; steady-state writes stay under the watermark
		return 0, fmt.Errorf("%w: %v used, %v requested, %v capacity",
			ErrOutOfSpace, a.Used(), n, a.Capacity())
	}
	// Payload per data device; RAID5 additionally writes parity so every
	// device receives per-device bytes.
	per := units.Bytes(float64(n) / float64(a.dataDevices()))
	var worst units.Seconds
	for _, d := range a.Devices {
		if d.Failed() {
			continue // degraded RAID5: parity substitutes
		}
		t, err := d.Write(per)
		if err != nil {
			return 0, err
		}
		if t > worst {
			worst = t
		}
	}
	return a.capTime(n, worst, a.WriteBandwidth()), nil
}

// Read reads n payload bytes, returning the transfer time. A degraded RAID5
// array still serves reads (reconstruction from parity) at the surviving
// devices' bandwidth.
//
//dhllint:hotpath
func (a *Array) Read(n units.Bytes) (units.Seconds, error) {
	if n < 0 {
		return 0, ErrNegativeLength
	}
	if !a.Healthy() {
		return 0, ErrDegraded
	}
	if n > a.Used() {
		//dhllint:allow allocflow -- out-of-range read is a caller bug, not steady-state I/O
		return 0, fmt.Errorf("%w: %v stored, %v requested", ErrOutOfRange, a.Used(), n)
	}
	per := units.Bytes(float64(n) / float64(a.dataDevices()))
	var worst units.Seconds
	for _, d := range a.Devices {
		if d.Failed() {
			continue
		}
		// Degraded reads touch every surviving stripe; model the same
		// per-device volume.
		t := d.Spec.ReadRate.TransferTime(per)
		d.bytesRead += per
		if t > worst {
			worst = t
		}
	}
	return a.capTime(n, worst, a.ReadBandwidth()), nil
}

// SurvivingDevices returns the number of non-failed devices.
func (a *Array) SurvivingDevices() int { return len(a.Devices) - a.failedCount() }

// AvailablePayload is the payload readable under the current failure
// state. A healthy (or singly-degraded RAID5) array serves everything; a
// RAID0 array that lost f of n devices lost the stripes on those devices —
// the surviving (n−f)/n fraction is still addressable, per §III-D's
// observation that backups ameliorate partial data loss. A RAID5 array
// past its redundancy serves nothing.
func (a *Array) AvailablePayload() units.Bytes {
	f := a.failedCount()
	if f == 0 {
		return a.Used()
	}
	switch a.Level {
	case RAID5:
		if f <= 1 {
			return a.Used()
		}
		return 0
	default:
		return units.Bytes(float64(a.Used()) * float64(len(a.Devices)-f) / float64(len(a.Devices)))
	}
}

// DegradedRead reads n payload bytes from the surviving stripes of an
// array that may have lost redundancy, returning the transfer time at the
// survivors' aggregate bandwidth. Unlike Read it does not require Healthy;
// it requires only that the requested bytes fit in AvailablePayload.
func (a *Array) DegradedRead(n units.Bytes) (units.Seconds, error) {
	if n < 0 {
		return 0, ErrNegativeLength
	}
	if a.Healthy() {
		return a.Read(n)
	}
	avail := a.AvailablePayload()
	if n > avail {
		return 0, fmt.Errorf("%w: %v available on survivors, %v requested", ErrOutOfRange, avail, n)
	}
	surv := a.SurvivingDevices()
	if surv == 0 {
		return 0, fmt.Errorf("%w: no surviving devices", ErrDegraded)
	}
	per := units.Bytes(float64(n) / float64(surv))
	var worst units.Seconds
	for _, d := range a.Devices {
		if d.Failed() {
			continue
		}
		t := d.Spec.ReadRate.TransferTime(per)
		d.bytesRead += per
		if t > worst {
			worst = t
		}
	}
	return a.capTime(n, worst, a.ReadBandwidth()), nil
}

// capTime returns the device-limited time unless the PCIe-capped aggregate
// bandwidth is slower.
func (a *Array) capTime(n units.Bytes, deviceTime units.Seconds, bw units.BytesPerSecond) units.Seconds {
	pcieTime := bw.TransferTime(n)
	return units.Seconds(math.Max(float64(deviceTime), float64(pcieTime)))
}

// FailDevice fails device i (failure injection).
func (a *Array) FailDevice(i int) error {
	if i < 0 || i >= len(a.Devices) {
		return fmt.Errorf("storage: no device %d in %d-device array", i, len(a.Devices))
	}
	a.Devices[i].Fail()
	return nil
}

// RebuildTime estimates how long reconstructing a failed RAID5 device takes:
// read every surviving device fully in parallel, write the replacement.
func (a *Array) RebuildTime() (units.Seconds, error) {
	if a.Level != RAID5 {
		return 0, fmt.Errorf("storage: rebuild only defined for RAID5, have %v", a.Level)
	}
	if !a.Degraded() {
		return 0, errors.New("storage: array is not degraded")
	}
	spec := a.Devices[0].Spec
	readAll := spec.ReadRate.TransferTime(spec.Capacity)
	writeAll := spec.WriteRate.TransferTime(spec.Capacity)
	return units.Seconds(math.Max(float64(readAll), float64(writeAll))), nil
}

// ActivePower is the array's power draw during a transfer.
func (a *Array) ActivePower() units.Watts {
	var w units.Watts
	for _, d := range a.Devices {
		if !d.Failed() {
			w += d.ActivePower()
		}
	}
	return w
}
