//go:build !race

package repro

// Dynamic verification of the //dhllint:hotpath annotations: every
// annotated entry point is driven through testing.AllocsPerRun and must
// measure exactly zero steady-state allocations. The static allocflow
// pass and these tests pin each other — the analyzer proves no allocating
// construct is reachable, the run proves the exemptions (amortised
// appends, cold branches behind allows) really stay cold.
//
// Excluded under -race: the race runtime inserts its own allocations,
// which would fail the zero budgets without measuring the model.

import (
	"testing"

	"repro/internal/dhlsys"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/tubenet"
	"repro/internal/units"
)

// zeroAllocs asserts f performs no allocations per run after its warm-up
// call (AllocsPerRun runs f once before measuring).
func zeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %.1f allocs/run, want 0", name, n)
	}
}

// TestHotPathAllocsEventKernel pins the sim.Engine schedule/step cycle:
// At/After/MustAfter, the heap push/pop/sift family, Cancel, and
// EventTime, all against a warm arena.
func TestHotPathAllocsEventKernel(t *testing.T) {
	e := sim.New()
	nop := func() {}
	// Warm the arena and heap past the burst size below.
	for i := 0; i < 64; i++ {
		e.MustAfter(units.Seconds(i), "warm", nop)
	}
	for e.Step() {
	}
	misses := 0
	zeroAllocs(t, "schedule/step", func() {
		base := e.Now()
		for i := 0; i < 32; i++ {
			e.MustAfter(units.Seconds(i+1), "tick", nop)
		}
		h := e.MustAfter(base+1000, "cancelled", nop)
		if _, ok := e.EventTime(h); !ok {
			misses++
		}
		if !e.Cancel(h) {
			misses++
		}
		for e.Step() {
		}
	})
	if misses != 0 {
		t.Fatalf("%d handle lookups missed", misses)
	}
}

// TestHotPathAllocsSpanLog pins the telemetry record path: Reset, Intern,
// RecordSpan with annotations, and RecordInstant against warm backing
// arrays.
func TestHotPathAllocsSpanLog(t *testing.T) {
	log := telemetry.NewSpanLog()
	rec := func() {
		log.Reset() // keeps backing arrays; IDs must be re-interned
		cart := log.Intern("cart-0")
		transit := log.Intern("transit")
		log.RecordSpan(cart, transit, 0, 1, telemetry.KV{Key: "dir", Value: "outbound"})
		log.RecordSpan(cart, transit, 1, 2)
		log.RecordInstant(cart, transit, 2, telemetry.KV{Key: "kind", Value: "stall"})
	}
	zeroAllocs(t, "span log record", rec)
	if log.NumSpans() != 2 || log.NumInstants() != 1 {
		t.Fatalf("log holds %d spans, %d instants; want 2, 1", log.NumSpans(), log.NumInstants())
	}
}

// TestHotPathAllocsSpanLogGrow pins the pre-sizing path: after Grow, a
// cold log records within capacity with no Reset needed.
func TestHotPathAllocsSpanLogGrow(t *testing.T) {
	log := telemetry.NewSpanLog()
	cart := log.Intern("cart-0")
	name := log.Intern("transit")
	log.Grow(256, 256, 256)
	at := units.Seconds(0)
	zeroAllocs(t, "record after Grow", func() {
		at++
		log.RecordSpan(cart, name, at, at+1, telemetry.KV{Key: "dir", Value: "outbound"})
		log.RecordInstant(cart, name, at)
	})
	if log.NumSpans() == 0 || log.NumInstants() == 0 {
		t.Fatal("grown log recorded nothing")
	}
}

// TestHotPathAllocsRegistry pins the metrics hot path: handle lookups by
// name (warm map hits), counter/gauge updates, and histogram observation.
func TestHotPathAllocsRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	hist := reg.Histogram("dhl_launch_seconds", []float64{1, 2, 5})
	v := 0.0
	zeroAllocs(t, "registry record", func() {
		v++
		reg.Counter("dhl_launches_total").Inc()
		reg.Counter("dhl_launch_energy_joules_total").Add(v)
		reg.Gauge("dhl_sim_time_seconds").Set(v)
		reg.Gauge("dhl_queue_depth").Add(-1)
		hist.Observe(v)
	})
	if reg.Counter("dhl_launches_total").Value() == 0 || hist.Count() == 0 {
		t.Fatal("registry recorded nothing")
	}
}

// TestHotPathAllocsStorage pins Device and Array I/O. Repair resets the
// allocation watermark each run so writes never hit the capacity error
// path.
func TestHotPathAllocsStorage(t *testing.T) {
	dev := storage.NewDevice(storage.SabrentRocket4Plus)
	failures := 0
	zeroAllocs(t, "device write/read", func() {
		if _, err := dev.Write(units.MB); err != nil {
			failures++
		}
		if _, err := dev.Read(units.MB); err != nil {
			failures++
		}
		dev.Repair()
	})

	arr, err := storage.NewArray(storage.RAID0, storage.SabrentRocket4Plus, 4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	zeroAllocs(t, "array write/read", func() {
		if _, err := arr.Write(units.MB); err != nil {
			failures++
		}
		if _, err := arr.Read(units.MB); err != nil {
			failures++
		}
		for _, d := range arr.Devices {
			d.Repair()
		}
	})
	if failures != 0 {
		t.Fatalf("%d I/O operations failed", failures)
	}
}

// launchCycle builds a warmed single-cart system and returns one full
// Open→drain→Close→drain cycle as a closure, plus a pointer to the error
// slot the completion callbacks write.
func launchCycle(t *testing.T, set *telemetry.Set) (func(), *error) {
	t.Helper()
	opt := dhlsys.DefaultOptions()
	opt.NumCarts = 1
	opt.DockStations = 1
	opt.Telemetry = set
	sys, err := dhlsys.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	lastErr := new(error)
	done := func(err error) {
		if err != nil {
			*lastErr = err
		}
	}
	cycle := func() {
		sys.Open(0, done)
		for sys.Engine.Step() {
		}
		sys.Close(0, done)
		for sys.Engine.Step() {
		}
	}
	// Warm: grow the event arena, the request queue, and (when enabled)
	// the telemetry structures to steady-state capacity.
	for i := 0; i < 4; i++ {
		cycle()
	}
	return cycle, lastErr
}

// TestHotPathAllocsLaunchLoop pins the full dhlsys scratch/launch loop —
// every step function from tryOpen through ioFinish — with telemetry
// disabled: the steady-state cycle must not allocate at all.
func TestHotPathAllocsLaunchLoop(t *testing.T) {
	cycle, lastErr := launchCycle(t, nil)
	zeroAllocs(t, "launch loop (telemetry off)", cycle)
	if *lastErr != nil {
		t.Fatalf("cycle failed: %v", *lastErr)
	}
}

// TestHotPathAllocsLaunchLoopTelemetry pins the same loop with telemetry
// enabled. Metrics handles are warm map hits; the span log is pre-sized
// with Grow so the record path appends within capacity throughout the
// measurement.
func TestHotPathAllocsLaunchLoopTelemetry(t *testing.T) {
	set := telemetry.NewSet()
	cycle, lastErr := launchCycle(t, set)
	// ~12 spans and ~6 annotation KVs per cycle; reserve for the measured
	// runs plus AllocsPerRun's warm-up call with generous headroom.
	set.Spans.Grow(4096, 512, 2048)
	zeroAllocs(t, "launch loop (telemetry on)", cycle)
	if *lastErr != nil {
		t.Fatalf("cycle failed: %v", *lastErr)
	}
	if set.Spans.NumSpans() == 0 {
		t.Fatal("telemetry recorded no spans")
	}
}

// TestHotPathAllocsCampusDispatch pins the tubenet dispatch hot loop:
// steady-state depart/arrive/dock/dwell cycles over a warm campus, with
// every per-edge queue, occupant list, and line-hold slice already grown
// to its working footprint, must not allocate. No chaos and no epochs, so
// the only code driven is the //dhllint:hotpath-annotated path.
func TestHotPathAllocsCampusDispatch(t *testing.T) {
	c, err := tubenet.New(tubenet.Options{
		Carts: 128, TripsPerCart: 512, Seed: 5, EpochEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	eng := c.Engine()
	// Warm: drive well past the point where every queue has hit its peak
	// depth, so appends stay within capacity during the measurement.
	for i := 0; i < 1<<15; i++ {
		if !eng.Step() {
			t.Fatal("campus drained during warm-up")
		}
	}
	drained := false
	zeroAllocs(t, "campus dispatch", func() {
		for i := 0; i < 64; i++ {
			if !eng.Step() {
				drained = true
				return
			}
		}
	})
	if drained {
		t.Fatal("campus drained mid-measurement; grow TripsPerCart")
	}
}
