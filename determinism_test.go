package repro

// Repository-wide determinism regression: run a representative slice of
// every stochastic or parallel subsystem twice in-process and assert the
// serialized outputs are byte-identical. This is the executable form of
// the invariants dhllint enforces statically (no ambient clocks or RNGs,
// no map-order leakage, injected seeds): if either side regresses, two
// consecutive runs stop agreeing and this test fails before a sweep
// byte-identity bug ships.

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datamap"
	"repro/internal/dhlsys"
	"repro/internal/sweep"
	"repro/internal/track"
	"repro/internal/units"
	"repro/internal/workload"
)

// serialize renders any value to the exact bytes a report would emit.
func serialize(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDesignSpaceSweepIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		rows, err := core.DesignSpace(sweep.Workers(4))
		if err != nil {
			t.Fatal(err)
		}
		return serialize(t, rows)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("parallel design-space sweep differs between runs:\n%s\nvs\n%s", first, second)
	}
}

func TestWorkloadGenerationIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		var out []workload.Trace
		pb, err := workload.DefaultPhysicsBurst().Generate()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := workload.DefaultBulkBackup().Generate()
		if err != nil {
			t.Fatal(err)
		}
		ml, err := workload.DefaultMLEpochs().Generate()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pb, bb, ml)
		return serialize(t, out)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("workload generation differs between runs:\n%s\nvs\n%s", first, second)
	}
}

func TestFailureInjectedShuttleIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		opt := dhlsys.DefaultOptions()
		opt.FailureRate = 0.2
		opt.Seed = 42
		s, err := dhlsys.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        4 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// %+v snapshots every counter, including failure/retry paths that
		// consume the injected RNG.
		return fmt.Sprintf("%+v\n%+v", res, s.Stats())
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("failure-injected shuttle differs between runs:\n%s\nvs\n%s", first, second)
	}
}

func TestDatamapPlacementIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		c := datamap.NewCatalog()
		for id := 0; id < 8; id++ {
			if err := c.AddCart(track.CartID(id), 16, 4*units.TB); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Place("ml-29pb", 200*units.TB); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Append("ml-29pb", 37*units.TB); err != nil {
			t.Fatal(err)
		}
		ext, epoch, err := c.Locate("ml-29pb")
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("free=%v epoch=%d ext=%v", c.FreeBytes(), epoch, ext)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("datamap placement differs between runs:\n%s\nvs\n%s", first, second)
	}
}
