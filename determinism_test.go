package repro

// Repository-wide determinism regression: run a representative slice of
// every stochastic or parallel subsystem twice in-process and assert the
// serialized outputs are byte-identical. This is the executable form of
// the invariants dhllint enforces statically (no ambient clocks or RNGs,
// no map-order leakage, injected seeds): if either side regresses, two
// consecutive runs stop agreeing and this test fails before a sweep
// byte-identity bug ships.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datamap"
	"repro/internal/dhlsys"
	"repro/internal/faults"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/tubenet"
	"repro/internal/units"
	"repro/internal/workload"
)

// shuttleScenarios lists the chaos scenarios that apply to a
// point-to-point shuttle deployment. campus-partition targets the tubenet
// campus graph (Dims.Segments >= 1) and has its own determinism pin in
// TestCampusSimulationIsByteIdentical.
func shuttleScenarios() []string {
	var names []string
	for _, s := range faults.ScenarioNames() {
		if s != faults.ScenarioCampusPartition {
			names = append(names, s)
		}
	}
	return names
}

// serialize renders any value to the exact bytes a report would emit.
func serialize(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDesignSpaceSweepIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		rows, err := core.DesignSpace(sweep.Workers(4))
		if err != nil {
			t.Fatal(err)
		}
		return serialize(t, rows)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("parallel design-space sweep differs between runs:\n%s\nvs\n%s", first, second)
	}
}

func TestWorkloadGenerationIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		var out []workload.Trace
		pb, err := workload.DefaultPhysicsBurst().Generate()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := workload.DefaultBulkBackup().Generate()
		if err != nil {
			t.Fatal(err)
		}
		ml, err := workload.DefaultMLEpochs().Generate()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pb, bb, ml)
		return serialize(t, out)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("workload generation differs between runs:\n%s\nvs\n%s", first, second)
	}
}

func TestFailureInjectedShuttleIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		opt := dhlsys.DefaultOptions()
		opt.FailureRate = 0.2
		opt.Seed = 42
		s, err := dhlsys.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        4 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// %+v snapshots every counter, including failure/retry paths that
		// consume the injected RNG.
		return fmt.Sprintf("%+v\n%+v", res, s.Stats())
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("failure-injected shuttle differs between runs:\n%s\nvs\n%s", first, second)
	}
}

func TestDesignSpaceSweepIsWorkerCountInvariant(t *testing.T) {
	run := func(workers int) string {
		rows, err := core.DesignSpace(sweep.Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return serialize(t, rows)
	}
	serial, parallel := run(1), run(4)
	if serial != parallel {
		t.Errorf("design-space sweep differs between 1 and 4 workers:\n%s\nvs\n%s", serial, parallel)
	}
}

// chaosRun executes one full chaos shuttle and renders every observable
// artefact — fault event log, shuttle result, stats, availability report —
// as one string. Two identical (scenario, seed) runs must agree on every
// byte of it.
func chaosRun(t *testing.T, scenario string, seed int64) string {
	t.Helper()
	opt := dhlsys.DefaultOptions()
	opt.Seed = seed
	script, err := faults.Scenario(scenario, seed, 60,
		opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = &script
	s, err := dhlsys.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Shuttle(dhlsys.ShuttleOptions{
		Dataset:        4 * 256 * units.TB,
		ReadAtEndpoint: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", scenario, err)
	}
	return fmt.Sprintf("%s\n%+v\n%+v\n%v",
		strings.Join(s.FaultLog(), "\n"), res, s.Stats(), s.Report())
}

// telemetryChaosRun executes one instrumented chaos shuttle against the
// given collector set and returns the serialized metrics snapshot and
// Chrome trace export — the two telemetry artefacts whose byte-identity
// the exporters guarantee.
func telemetryChaosRun(t *testing.T, set *telemetry.Set, scenario string, seed int64) (string, string) {
	t.Helper()
	opt := dhlsys.DefaultOptions()
	opt.Seed = seed
	opt.Telemetry = set
	script, err := faults.Scenario(scenario, seed, 60,
		opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = &script
	s, err := dhlsys.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Shuttle(dhlsys.ShuttleOptions{
		Dataset:        4 * 256 * units.TB,
		ReadAtEndpoint: true,
	}); err != nil {
		t.Fatalf("%s: %v", scenario, err)
	}
	snap := serialize(t, s.MetricsSnapshot())
	trace, err := telemetry.ChromeTrace(opt.Telemetry.Spans)
	if err != nil {
		t.Fatal(err)
	}
	return snap, string(trace)
}

// TestTelemetryExportsAreByteIdenticalAcrossRuns pins the telemetry
// determinism contract: two instrumented runs of the same (scenario, seed)
// must serialize to the same metrics-snapshot JSON and the same Chrome
// trace bytes, making exports diffable artefacts like every other report.
func TestTelemetryExportsAreByteIdenticalAcrossRuns(t *testing.T) {
	for _, scenario := range shuttleScenarios() {
		snap1, trace1 := telemetryChaosRun(t, telemetry.NewSet(), scenario, 1337)
		snap2, trace2 := telemetryChaosRun(t, telemetry.NewSet(), scenario, 1337)
		if snap1 != snap2 {
			t.Errorf("chaos scenario %s: metrics snapshots differ between runs:\n%s\nvs\n%s",
				scenario, snap1, snap2)
		}
		if trace1 != trace2 {
			t.Errorf("chaos scenario %s: Chrome traces differ between runs:\n%s\nvs\n%s",
				scenario, trace1, trace2)
		}
		// Prometheus text is derived from the snapshot; a cheap extra pin.
		if p1, p2 := telemetry.PrometheusText(mustSnap(t, snap1)), telemetry.PrometheusText(mustSnap(t, snap2)); p1 != p2 {
			t.Errorf("chaos scenario %s: Prometheus expositions differ", scenario)
		}
	}
}

// TestTelemetryRecycledSetIsByteIdentical pins the pooling contract: a
// long-lived Set reused across runs via Reset must export the same bytes
// as a freshly constructed one — recycled record, string-table, and
// arg-store buffers leak nothing between runs, and re-interned StrIDs
// resolve to the same names.
func TestTelemetryRecycledSetIsByteIdentical(t *testing.T) {
	shared := telemetry.NewSet()
	// Warm the shared set on a different scenario first, so stale state
	// from a dissimilar run would show up in the comparison below.
	scenarios := shuttleScenarios()
	if len(scenarios) > 1 {
		telemetryChaosRun(t, shared, scenarios[len(scenarios)-1], 7)
	}
	for _, scenario := range scenarios {
		shared.Reset()
		snapWarm, traceWarm := telemetryChaosRun(t, shared, scenario, 1337)
		snapCold, traceCold := telemetryChaosRun(t, telemetry.NewSet(), scenario, 1337)
		if snapWarm != snapCold {
			t.Errorf("chaos scenario %s: recycled-set metrics snapshot differs from fresh set:\n%s\nvs\n%s",
				scenario, snapWarm, snapCold)
		}
		if traceWarm != traceCold {
			t.Errorf("chaos scenario %s: recycled-set Chrome trace differs from fresh set", scenario)
		}
	}
}

// mustSnap round-trips a serialized snapshot back into the struct.
func mustSnap(t *testing.T, s string) telemetry.Snapshot {
	t.Helper()
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(s), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestChaosScenariosAreByteIdenticalAcrossRuns(t *testing.T) {
	for _, scenario := range shuttleScenarios() {
		first, second := chaosRun(t, scenario, 1337), chaosRun(t, scenario, 1337)
		if first != second {
			t.Errorf("chaos scenario %s differs between runs:\n%s\nvs\n%s", scenario, first, second)
		}
	}
}

// TestRandomFaultSchedulesNeverDeadlockDockFIFO is the liveness property
// behind every recovery policy: whatever fault schedule the scenario
// generator rolls, the shuttle must still complete every delivery — no
// schedule may wedge the dock FIFO (Shuttle reports "delivered N of M"
// when the event queue drains with carts still waiting).
func TestRandomFaultSchedulesNeverDeadlockDockFIFO(t *testing.T) {
	configs := []struct {
		name  string
		carts int
		docks int
		rail  track.RailMode
	}{
		{"default", 2, 4, track.SingleRail},
		{"contended-dual", 4, 2, track.DualRail},
	}
	for _, cfg := range configs {
		for _, scenario := range shuttleScenarios() {
			for seed := int64(1); seed <= 3; seed++ {
				opt := dhlsys.DefaultOptions()
				opt.NumCarts = cfg.carts
				opt.DockStations = cfg.docks
				opt.RailMode = cfg.rail
				opt.Seed = seed
				script, err := faults.Scenario(scenario, seed, 90,
					opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs)
				if err != nil {
					t.Fatal(err)
				}
				opt.Faults = &script
				s, err := dhlsys.New(opt)
				if err != nil {
					t.Fatal(err)
				}
				const want = 3
				res, err := s.Shuttle(dhlsys.ShuttleOptions{
					Dataset:        want * 256 * units.TB,
					ReadAtEndpoint: true,
				})
				if err != nil {
					t.Errorf("%s/%s seed %d: shuttle did not complete: %v",
						cfg.name, scenario, seed, err)
					continue
				}
				if res.Deliveries != want {
					t.Errorf("%s/%s seed %d: %d of %d deliveries",
						cfg.name, scenario, seed, res.Deliveries, want)
				}
			}
		}
	}
}

func TestDatamapPlacementIsByteIdenticalAcrossRuns(t *testing.T) {
	run := func() string {
		c := datamap.NewCatalog()
		for id := 0; id < 8; id++ {
			if err := c.AddCart(track.CartID(id), 16, 4*units.TB); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Place("ml-29pb", 200*units.TB); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Append("ml-29pb", 37*units.TB); err != nil {
			t.Fatal(err)
		}
		ext, epoch, err := c.Locate("ml-29pb")
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("free=%v epoch=%d ext=%v", c.FreeBytes(), epoch, ext)
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("datamap placement differs between runs:\n%s\nvs\n%s", first, second)
	}
}

// campusChaosRun executes the full acceptance-scale campus simulation —
// 1,000 carts over the 20-station default campus under the
// campus-partition chaos scenario — and renders every observable artefact
// (fault event log plus the complete Result report, per-edge stats
// included) as one string.
func campusChaosRun(t *testing.T, seed int64) string {
	t.Helper()
	c, err := tubenet.New(tubenet.Options{Carts: 1000, TripsPerCart: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	script, err := faults.ScenarioDims(faults.ScenarioCampusPartition, seed, 300, c.Dims())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(c.Engine(), c, script)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TripsCompleted+res.TripsPending != 2000 {
		t.Fatalf("trip accounting leaked: %d done + %d pending != 2000",
			res.TripsCompleted, res.TripsPending)
	}
	return strings.Join(inj.LogLines(), "\n") + "\n" + res.String()
}

// TestCampusSimulationIsByteIdentical is the acceptance pin for the
// tubenet subsystem: a deterministic campus simulation of 1,000 carts
// across 20 stations with junction and tube-segment chaos must replay
// byte-identically from its seed.
func TestCampusSimulationIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale campus run")
	}
	first, second := campusChaosRun(t, 3), campusChaosRun(t, 3)
	if first != second {
		t.Errorf("1000-cart campus chaos run differs between runs:\n%.2000s\nvs\n%.2000s", first, second)
	}
}
