package repro

// Benchmarks for the dhllint engine itself: the sequential reference path
// (Workers=1) against the GOMAXPROCS-bounded pool, both over the whole
// module with a pre-warmed loader so the measured work is analysis, not
// parsing and type-checking. Regenerate the regression record with
//
//	scripts/bench.sh lint

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/lint"
)

func lintBenchSetup(b *testing.B) (lint.Config, *lint.Loader, []string) {
	b.Helper()
	root, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	cfg := lint.DefaultConfig(root, "repro")
	paths, err := lint.ModulePackages(root, "repro")
	if err != nil {
		b.Fatal(err)
	}
	ld := lint.NewLoader(root, "repro")
	// Warm the loader: parsing and type-checking are memoized, so the
	// timed loop measures the analysis passes.
	if _, err := lint.RunWithLoader(cfg, ld, paths); err != nil {
		b.Fatal(err)
	}
	return cfg, ld, paths
}

func benchLintModule(b *testing.B, workers int) {
	cfg, ld, paths := lintBenchSetup(b)
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := lint.RunWithLoader(cfg, ld, paths)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("module not lint-clean: %v", diags)
		}
	}
}

// BenchmarkLintModuleSequential is the single-worker baseline.
func BenchmarkLintModuleSequential(b *testing.B) { benchLintModule(b, 1) }

// BenchmarkLintModuleParallel analyzes packages on the worker pool;
// diagnostics are byte-identical to the sequential path
// (TestParallelMatchesSequential in internal/lint). On a single-core host
// GOMAXPROCS(0) is 1 and this degenerates to the sequential schedule —
// compare against Sequential only where GOMAXPROCS > 1 (see the notes in
// BENCH_lint.json).
func BenchmarkLintModuleParallel(b *testing.B) { benchLintModule(b, runtime.GOMAXPROCS(0)) }
