#!/usr/bin/env bash
# Run dhllint over the whole module.
#
# Usage:
#   scripts/lint.sh            # human-readable file:line:col output
#   scripts/lint.sh -json      # machine-readable report on stdout
#   scripts/lint.sh -sarif     # SARIF 2.1.0 log for code scanning
#   scripts/lint.sh -rules determinism,floateq
#   scripts/lint.sh -graph     # dump the module call graph
#
# All flags are forwarded to cmd/dhllint; see `go run ./cmd/dhllint -list`
# for the rule set. Exit status: 0 clean, 1 issues found, 2 driver error —
# in -json mode too, so CI can gate on the report without parsing it
# (pinned by TestJSONExitCode in cmd/dhllint).
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/dhllint "$@" ./...
