#!/usr/bin/env bash
# Tier-2 quality gate: vet, formatting, and the full test suite under the
# race detector (the sweep worker pool makes data races a first-class
# failure mode). Tier-1 remains `go build ./... && go test ./...`.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== dhllint ./..."
go run ./cmd/dhllint ./...

# Redundant with the full run above, but a dedicated step means a broken
# lock-discipline or escape invariant names itself instead of hiding in
# the aggregate diagnostic list.
echo "== dhllint concflow gate (lockcheck, lockorder, goescape)"
go run ./cmd/dhllint -rules lockcheck,lockorder,goescape ./...

# The single-slot SetTracer shim is deprecated; everything outside its home
# package (the shim itself and its dedicated regression tests) must use
# AddTracer. Keeps new call sites from re-adopting the legacy API.
echo "== no new SetTracer callers"
if grep -rn "SetTracer" --include="*.go" . | grep -v "^./internal/sim/"; then
    echo "deprecated sim.SetTracer used outside internal/sim; migrate to AddTracer" >&2
    exit 1
fi

echo "== go test -race ./..."
go test -race ./...

echo "OK: vet, gofmt, build, dhllint, race-clean tests"
