#!/usr/bin/env bash
# Benchmark-regression harness: runs every paper-artefact benchmark three
# times with allocation reporting and writes BENCH_sweep.json, recording the
# best (minimum) ns/op per benchmark alongside B/op and allocs/op. Compare
# the file against a previous run to spot hot-path regressions.
#
# Usage: scripts/bench.sh [output.json] [bench-regex]
#   scripts/bench.sh                                  # all benches → BENCH_sweep.json
#   scripts/bench.sh lint                             # the dhllint engine → BENCH_lint.json
#   scripts/bench.sh telemetry                        # instrumentation overhead → BENCH_telemetry.json
#   scripts/bench.sh kernel                           # event-kernel hot path → BENCH_kernel.json
#   scripts/bench.sh controlplane                     # dhlload overload run → BENCH_controlplane.json
#   scripts/bench.sh campus                           # 1000-cart campus chaos run → BENCH_campus.json
#
# The telemetry mode runs the enabled/disabled shuttle pair and adds an
# overhead_pct field (enabled vs disabled best-of-3 ns/op) to the output;
# the acceptance target keeps the disabled path within 1 % of baseline.
#
# The kernel mode runs the event-kernel pair (burst and steady-state),
# the shuttle workload, and the telemetry shuttle pair; kernel rows gain
# an events_per_sec field and the output an overhead_pct (warm
# telemetry-enabled vs disabled shuttle, the pooled-Set operating mode)
# plus overhead_cold_pct (fresh Set per run).
#
# The lint mode runs the sequential/parallel dhllint engine pair and adds
# gomaxprocs + notes fields, so a recorded no-speedup parallel run names
# its cause (a single-core host) instead of looking like a pool bug.
#
# The controlplane mode is not a Go benchmark: it runs the cmd/dhlload
# virtual-time load harness at ~4x saturation (closed loop, fixed seed)
# and records p50/p99 latency, offered vs goodput req/s, and shed counts.
# The run is byte-deterministic — it is executed twice and the outputs
# compared, so a nondeterminism regression fails the bench itself.
#
# The campus mode follows the same pattern over internal/tubenet: the
# acceptance-scale 1000-cart campus simulation under the campus-partition
# chaos scenario, recording p50/p99 cart transit time and reroute counts.
# Seed 3 is pinned because its fault draw exercises the trunk ring, so the
# recorded run has a non-zero reroute count.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "campus" ]]; then
    out="BENCH_campus.json"
    campus_args=(-campus -campus-carts 1000 -campus-trips 2
                 -chaos campus-partition -seed 3)
    go run ./cmd/dhlsim "${campus_args[@]}" -bench-out "$out" > /dev/null
    second="$(mktemp)"
    trap 'rm -f "$second"' EXIT
    go run ./cmd/dhlsim "${campus_args[@]}" -bench-out "$second" > /dev/null
    if ! cmp -s "$out" "$second"; then
        echo "bench.sh: campus runs diverged — determinism regression" >&2
        diff "$out" "$second" >&2 || true
        exit 1
    fi
    echo "wrote $out (two runs byte-identical)"
    exit 0
fi

if [[ "${1:-}" == "controlplane" ]]; then
    out="BENCH_controlplane.json"
    load_args=(-mode closed -clients 48 -duration 30 -seed 9
               -think 0.1 -status-every 0.5 -max-queue 8)
    go run ./cmd/dhlload "${load_args[@]}" -bench-out "$out"
    second="$(mktemp)"
    trap 'rm -f "$second"' EXIT
    go run ./cmd/dhlload "${load_args[@]}" -bench-out "$second" > /dev/null
    if ! cmp -s "$out" "$second"; then
        echo "bench.sh: dhlload runs diverged — determinism regression" >&2
        diff "$out" "$second" >&2 || true
        exit 1
    fi
    echo "wrote $out (two runs byte-identical)"
    exit 0
fi

out="${1:-BENCH_sweep.json}"
pattern="${2:-.}"
telemetry=0
kernel=0
lint=0
if [[ "${1:-}" == "telemetry" ]]; then
    out="BENCH_telemetry.json"
    pattern="BenchmarkShuttleTelemetry(Disabled|Enabled)$"
    telemetry=1
elif [[ "${1:-}" == "kernel" ]]; then
    out="BENCH_kernel.json"
    pattern="BenchmarkEventKernel(SteadyState)?$|BenchmarkSystemSimulation$|BenchmarkShuttleTelemetry(Disabled|Enabled|EnabledCold)$"
    kernel=1
elif [[ "${1:-}" == "lint" ]]; then
    out="BENCH_lint.json"
    pattern="BenchmarkLintModule(Sequential|Parallel)$"
    lint=1
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run=NONE -bench="$pattern" -benchmem -count=3 . | tee "$raw"

awk -v gomaxprocs="${GOMAXPROCS:-$(nproc)}" -v telemetry="$telemetry" -v kernel="$kernel" -v lint="$lint" '
/^Benchmark/ {
    # BenchmarkName-N  iters  ns/op  B/op  allocs/op
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    bytes = $5 + 0
    allocs = $7 + 0
    if (!(name in best) || ns < best[name]) {
        best[name] = ns
        bop[name] = bytes
        aop[name] = allocs
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
/^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
END {
    printf "{\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"count\": 3,\n"
    printf "  \"benchmarks\": [\n"
    # Events fired per benchmark iteration, for the kernel throughput rows.
    evop["BenchmarkEventKernel"] = 1000
    evop["BenchmarkEventKernelSteadyState"] = 16384
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"bytes_per_op\": %d, \"allocs_per_op\": %d", \
            name, best[name], bop[name], aop[name]
        if (kernel && (name in evop) && best[name] > 0)
            printf ", \"events_per_sec\": %.0f", evop[name] / best[name] * 1e9
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]"
    if (lint) {
        printf ",\n  \"gomaxprocs\": %d", gomaxprocs
        if (gomaxprocs == 1)
            printf ",\n  \"notes\": \"BenchmarkLintModuleParallel shows no speedup over Sequential on this machine because the benchmark host is single-core (GOMAXPROCS=1): the GOMAXPROCS-bounded pool degenerates to one worker, so both benches run the identical sequential schedule. The pool itself adds <3%% overhead at worker count 1; TestParallelMatchesSequential and TestDesignSpaceSweepIsWorkerCountInvariant pin that worker count never changes output. Re-measure on a multi-core host to see pool scaling.\""
    }
    if ((telemetry || kernel) && ("BenchmarkShuttleTelemetryDisabled" in best) && ("BenchmarkShuttleTelemetryEnabled" in best)) {
        off = best["BenchmarkShuttleTelemetryDisabled"]
        on = best["BenchmarkShuttleTelemetryEnabled"]
        printf ",\n  \"overhead_pct\": %.2f", (on - off) / off * 100
        if (kernel && ("BenchmarkShuttleTelemetryEnabledCold" in best))
            printf ",\n  \"overhead_cold_pct\": %.2f", \
                (best["BenchmarkShuttleTelemetryEnabledCold"] - off) / off * 100
    }
    printf "\n}\n"
}' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks, best of 3)"
