#!/usr/bin/env bash
# Chaos determinism smoke: every named scenario, replayed twice from the
# same seed, must produce byte-identical output — stats, availability
# report, and the full fault event log. This is the executable form of the
# fault engine's determinism contract (see DESIGN.md, "Fault model").
#
# Usage: scripts/chaos.sh [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

seed="${1:-1337}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== building dhlsim"
go build -o "$tmp/dhlsim" ./cmd/dhlsim

scenarios="ssd-storm leaky-tube blocked-track brownout rough-day"
for sc in $scenarios; do
    echo "== chaos $sc (seed $seed): replay byte-identity"
    "$tmp/dhlsim" -chaos "$sc" -seed "$seed" -read -fault-log >"$tmp/$sc.a"
    "$tmp/dhlsim" -chaos "$sc" -seed "$seed" -read -fault-log >"$tmp/$sc.b"
    if ! cmp -s "$tmp/$sc.a" "$tmp/$sc.b"; then
        echo "FAIL: $sc replay diverged:" >&2
        diff "$tmp/$sc.a" "$tmp/$sc.b" >&2 || true
        exit 1
    fi
done

echo "== chaos campus-partition (seed $seed): campus replay byte-identity"
campus_args=(-campus -campus-carts 200 -chaos campus-partition -seed "$seed" -fault-log)
"$tmp/dhlsim" "${campus_args[@]}" >"$tmp/campus.a"
"$tmp/dhlsim" "${campus_args[@]}" >"$tmp/campus.b"
if ! cmp -s "$tmp/campus.a" "$tmp/campus.b"; then
    echo "FAIL: campus-partition replay diverged:" >&2
    diff "$tmp/campus.a" "$tmp/campus.b" >&2 || true
    exit 1
fi

echo "== failure-rate sweep (seed $seed): replay byte-identity"
"$tmp/dhlsim" -failure-sweep "0,0.1,0.3" -seed "$seed" -read >"$tmp/sweep.a"
"$tmp/dhlsim" -failure-sweep "0,0.1,0.3" -seed "$seed" -read >"$tmp/sweep.b"
cmp -s "$tmp/sweep.a" "$tmp/sweep.b" || { echo "FAIL: sweep replay diverged" >&2; exit 1; }

echo "OK: all scenarios replay byte-identically"
